"""Simulation machinery: clock, attacker, ground truth, scenario, world."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigError, SimulationError
from repro.sim import (
    AttackerModel,
    BenignUserModel,
    CampaignWorld,
    HistoricalScenario,
    SimulationClock,
    build_ground_truth,
)
from repro.sim.scenario import ADOPTION_QUARTER
from repro.simnet import Web
from repro.social import FacebookPlatform, TwitterPlatform


class TestClock:
    def test_ticks_advance(self):
        clock = SimulationClock(tick_minutes=10)
        assert clock.tick() == 10
        clock.run_until(100)
        assert clock.now == 100

    def test_one_shot_callback(self):
        clock = SimulationClock(tick_minutes=10)
        fired = []
        clock.schedule_at(25, fired.append)
        clock.run_until(40)
        assert fired == [30]  # first tick at/after 25

    def test_periodic_callback(self):
        clock = SimulationClock(tick_minutes=10)
        fired = []
        clock.schedule_every(30, fired.append)
        clock.run_until(100)
        assert fired == [30, 60, 90]

    def test_past_scheduling_rejected(self):
        clock = SimulationClock(start=100)
        with pytest.raises(SimulationError):
            clock.schedule_at(50, lambda now: None)
        with pytest.raises(SimulationError):
            clock.run_until(50)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SimulationConfig(duration_days=0)
        with pytest.raises(ConfigError):
            SimulationConfig(twitter_share=1.5)

    def test_scaled_preserves_shape(self):
        config = SimulationConfig()
        small = config.scaled(0.01)
        assert small.duration_days == 1
        assert small.target_fwb_phishing == 314
        assert small.twitter_share == config.twitter_share
        with pytest.raises(ConfigError):
            config.scaled(0.0)


class TestAttacker:
    @pytest.fixture()
    def setup(self, rng):
        web = Web()
        platforms = {
            "twitter": TwitterPlatform(rng),
            "facebook": FacebookPlatform(rng),
        }
        return web, platforms, AttackerModel(web, platforms, rng)

    def test_fwb_attack_announced(self, setup):
        web, platforms, attacker = setup
        attack = attacker.launch_fwb_attack(now=30)
        assert attack.is_fwb
        post = platforms[attack.platform_name].get_post(attack.post_id)
        assert post is not None
        assert str(attack.site.root_url) in post.text

    def test_platform_split_follows_share(self, setup):
        web, _platforms, attacker = setup
        for i in range(200):
            attacker.launch_fwb_attack(now=i)
        twitter_share = np.mean(
            [a.platform_name == "twitter" for a in attacker.launched]
        )
        assert 0.5 < twitter_share < 0.75  # target 19724/31405 = 0.628

    def test_fwb_choice_follows_abuse_weights(self, setup):
        web, _platforms, attacker = setup
        for i in range(300):
            attacker.launch_fwb_attack(now=i)
        names = [a.site.metadata["fwb"] for a in attacker.launched]
        weebly = names.count("weebly")
        hpage = names.count("hpage")
        assert weebly > 10 * max(hpage, 1) or hpage == 0

    def test_two_step_attacks_have_live_targets(self, setup):
        web, _platforms, attacker = setup
        for i in range(150):
            attacker.launch_fwb_attack(now=i)
        two_steps = [
            a for a in attacker.launched
            if a.site.metadata["variant"] in ("two_step", "iframe")
        ]
        assert two_steps, "mix should include evasive variants"
        for attack in two_steps:
            target = attack.site.metadata["target_url"]
            assert target is not None
            from repro.simnet.url import parse_url

            assert web.site_for(parse_url(target)) is not None

    def test_self_hosted_attack(self, setup):
        web, _platforms, attacker = setup
        attack = attacker.launch_self_hosted_attack(now=5)
        assert not attack.is_fwb
        assert web.whois.lookup(attack.site.root_url, 5).age_minutes == 0

    def test_benign_user_model(self, rng):
        web = Web()
        platforms = {
            "twitter": TwitterPlatform(rng),
            "facebook": FacebookPlatform(rng),
        }
        users = BenignUserModel(web, platforms, rng)
        site = users.post_benign_site(now=10)
        assert site.metadata["is_phishing"] is False
        assert len(users.posted) == 1


class TestGroundTruth:
    def test_balanced_classes(self, ground_truth):
        assert ground_truth.n_phishing == len(ground_truth) // 2

    def test_variants_recorded(self, ground_truth):
        phishing_variants = [v for v in ground_truth.variants if v is not None]
        assert len(phishing_variants) == ground_truth.n_phishing
        assert "credential" in phishing_variants

    def test_deterministic(self):
        a = build_ground_truth(n_per_class=10, seed=4)
        b = build_ground_truth(n_per_class=10, seed=4)
        assert [str(p.url) for p in a.pages] == [str(p.url) for p in b.pages]

    def test_split_arrays(self, ground_truth):
        from repro.core.features import FWB_FEATURE_NAMES

        X, y = ground_truth.split_arrays(FWB_FEATURE_NAMES)
        assert X.shape == (len(ground_truth), 20)
        assert y.shape == (len(ground_truth),)


class TestHistoricalScenario:
    def test_totals_match_d1(self):
        quarters = HistoricalScenario(seed=2).generate()
        assert sum(quarters.twitter) == 16300
        assert sum(quarters.facebook) == 8900

    def test_rising_trend(self):
        quarters = HistoricalScenario(seed=2).generate()
        totals = quarters.totals
        # Later quarters dominate earlier ones (quarter-over-quarter growth).
        assert sum(totals[-3:]) > 3 * sum(totals[:3])

    def test_newer_services_absent_early_present_late(self):
        quarters = HistoricalScenario(seed=2).generate()
        early = quarters.by_fwb[0]
        late = quarters.by_fwb[-1]
        assert early["weebly"] > 0
        # hpage adopted at quarter 9: negligible early, non-trivial later.
        assert early.get("hpage", 0) <= 2
        assert late["hpage"] >= 1

    def test_dominant_services_shift(self):
        quarters = HistoricalScenario(seed=2).generate()
        early_dominant = set(quarters.dominant_services(0))
        late_dominant = set(quarters.dominant_services(len(quarters.labels) - 1))
        assert late_dominant - early_dominant  # new services enter the 80% mass

    def test_labels(self):
        quarters = HistoricalScenario(seed=2).generate()
        assert quarters.labels[0] == "2020Q1"
        assert len(quarters.labels) == len(quarters.twitter)

    def test_adoption_table_covers_all_services(self):
        web = Web()
        assert set(ADOPTION_QUARTER) == set(web.fwb_providers)


class TestCampaignWorld:
    def test_run_produces_both_populations(self, campaign_result):
        assert campaign_result.detections > 0
        assert len(campaign_result.fwb_timelines) > 10
        assert len(campaign_result.self_hosted_timelines) > 10

    def test_deterministic_given_seed(self):
        config = SimulationConfig(seed=31, duration_days=1, target_fwb_phishing=40)
        a = CampaignWorld(config, train_samples_per_class=40).run()
        b = CampaignWorld(config, train_samples_per_class=40).run()
        assert [t.url for t in a.timelines] == [t.url for t in b.timelines]
        assert [t.site_removal_offset for t in a.timelines] == [
            t.site_removal_offset for t in b.timelines
        ]

    def test_blocklist_gap_emerges(self, campaign_result):
        """Table 3's headline gap holds in any seeded campaign."""
        fwb = campaign_result.fwb_timelines
        self_hosted = campaign_result.self_hosted_timelines
        gsb_fwb = np.mean([t.blocklist_offsets["gsb"] is not None for t in fwb])
        gsb_self = np.mean(
            [t.blocklist_offsets["gsb"] is not None for t in self_hosted]
        )
        assert gsb_self > gsb_fwb + 0.25
