"""Adaptive attacker: migration toward poorly-policed FWBs."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.sim import CampaignWorld
from repro.sim.adaptive import (
    AdaptiveAttackerModel,
    FeedbackRound,
    run_adaptation_experiment,
)
from repro.simnet import Web
from repro.social import FacebookPlatform, TwitterPlatform


@pytest.fixture(scope="module")
def adaptation_shares():
    world = CampaignWorld(
        SimulationConfig(seed=3, duration_days=1, target_fwb_phishing=40),
        train_samples_per_class=40,
    )
    return run_adaptation_experiment(
        world, n_rounds=4, launches_per_round=150
    )


class TestFeedbackMechanics:
    def _attacker(self, rng):
        web = Web()
        platforms = {
            "twitter": TwitterPlatform(rng),
            "facebook": FacebookPlatform(rng),
        }
        return AdaptiveAttackerModel(web, platforms, rng, learning_rate=0.8)

    def test_shares_always_normalized(self, rng):
        attacker = self._attacker(rng)
        attacks = [attacker.launch_fwb_attack(now=i * 10) for i in range(80)]
        attacker.observe_round(attacks, now=2000)
        shares = attacker.current_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert all(v >= attacker.exploration_floor / 2 for v in shares.values())

    def test_zero_learning_rate_is_static(self, rng):
        web = Web()
        platforms = {
            "twitter": TwitterPlatform(rng),
            "facebook": FacebookPlatform(rng),
        }
        attacker = AdaptiveAttackerModel(web, platforms, rng, learning_rate=0.0)
        before = attacker.current_shares()
        attacks = [attacker.launch_fwb_attack(now=i * 10) for i in range(50)]
        attacker.observe_round(attacks, now=2000)
        after = attacker.current_shares()
        for name in before:
            assert after[name] == pytest.approx(before[name], abs=0.02)

    def test_feedback_round_rates(self):
        feedback = FeedbackRound(
            round_index=0, launches={"weebly": 10}, survived={"weebly": 3}
        )
        assert feedback.survival_rate("weebly") == 0.3
        assert feedback.survival_rate("unknown") == 0.0

    def test_all_dead_round_keeps_weights(self, rng):
        attacker = self._attacker(rng)
        before = attacker.current_shares()
        # A round with zero survivors must not corrupt the distribution.
        attacker.observe_round([], now=100)
        assert attacker.current_shares() == before


class TestMigration:
    def test_responsive_services_lose_share(self, adaptation_shares):
        """The paper's §5.1/§5.3 prediction: attackers abandon the services
        that police them and spread onto the laggards."""
        first, last = adaptation_shares[0], adaptation_shares[-1]
        for responsive in ("weebly", "000webhost", "wix"):
            assert last[responsive] < first[responsive] * 0.7, responsive

    def test_lagging_services_gain_relative_share(self, adaptation_shares):
        first, last = adaptation_shares[0], adaptation_shares[-1]
        responsive_mass_before = sum(first[n] for n in ("weebly", "000webhost", "wix"))
        responsive_mass_after = sum(last[n] for n in ("weebly", "000webhost", "wix"))
        laggard_mass_before = sum(
            first[n] for n in ("google_sites", "sharepoint", "wordpress", "firebase")
        )
        laggard_mass_after = sum(
            last[n] for n in ("google_sites", "sharepoint", "wordpress", "firebase")
        )
        assert responsive_mass_after < responsive_mass_before
        assert laggard_mass_after > laggard_mass_before * 0.9

    def test_each_round_returns_distribution(self, adaptation_shares):
        for shares in adaptation_shares:
            assert abs(sum(shares.values()) - 1.0) < 1e-9
            assert len(shares) == 17
