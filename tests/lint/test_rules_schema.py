"""RP3xx cross-module schema rules: feature names, rng typing, dataclass drift."""

from pathlib import Path

import pytest

from repro.lint import ProjectContext
from repro.lint.project import ClassInfo

from .snippets import lint_snippet, rule_ids

SCHEMA = frozenset({"url_length", "has_noindex", "obfuscated_fwb_banner"})


def schema_project():
    return ProjectContext(feature_names=SCHEMA)


class TestRP301FeatureNames:
    def test_vector_call_with_unknown_name(self):
        source = "vec = features.vector(['url_length', 'url_lenght'])\n"
        report = lint_snippet(source, project=schema_project())
        assert rule_ids(report) == ["RP301"]
        assert "url_lenght" in report.findings[0].message

    def test_index_on_feature_names_constant(self):
        source = "i = FWB_FEATURE_NAMES.index('not_a_feature')\n"
        assert rule_ids(lint_snippet(source, project=schema_project())) == ["RP301"]

    def test_membership_test_checked(self):
        source = "ok = 'nope' in BASE_FEATURE_NAMES\n"
        assert rule_ids(lint_snippet(source, project=schema_project())) == ["RP301"]

    def test_values_subscript_checked(self):
        source = "x = page.features.values['has_noindx']\n"
        assert rule_ids(lint_snippet(source, project=schema_project())) == ["RP301"]

    def test_tainted_concatenation_checked(self):
        source = (
            "base = tuple(n for n in FWB_FEATURE_NAMES if n != 'url_length')\n"
            "augmented = base + ('obfuscated_fwb_bannr',)\n"
        )
        report = lint_snippet(source, scope="benchmarks", project=schema_project())
        assert rule_ids(report) == ["RP301"]

    def test_known_names_clean(self):
        source = (
            "vec = features.vector(['url_length', 'has_noindex'])\n"
            "i = FWB_FEATURE_NAMES.index('obfuscated_fwb_banner')\n"
            "x = page.features.values['url_length']\n"
        )
        assert rule_ids(lint_snippet(source, project=schema_project())) == []

    def test_rule_inactive_without_schema(self):
        source = "vec = features.vector(['whatever'])\n"
        assert rule_ids(lint_snippet(source, project=ProjectContext())) == []

    def test_unrelated_dict_subscript_clean(self):
        source = "brand = site.metadata['brand']\n"
        assert rule_ids(lint_snippet(source, project=schema_project())) == []


class TestRP302RngAnnotation:
    def test_untyped_rng_flagged(self):
        source = "def draw(rng):\n    return rng.integers(3)\n"
        assert rule_ids(lint_snippet(source)) == ["RP302"]

    def test_wrongly_typed_rng_flagged(self):
        source = "def draw(rng: int):\n    return rng\n"
        assert rule_ids(lint_snippet(source)) == ["RP302"]

    def test_generator_annotation_clean(self):
        source = (
            "import numpy as np\n"
            "def draw(rng: np.random.Generator) -> int:\n"
            "    return int(rng.integers(3))\n"
        )
        assert rule_ids(lint_snippet(source)) == []

    def test_string_annotation_clean(self):
        source = "def draw(rng: 'np.random.Generator'):\n    return rng\n"
        assert rule_ids(lint_snippet(source)) == []

    def test_tests_exempt(self):
        source = "def helper(rng):\n    return rng\n"
        assert rule_ids(lint_snippet(source, scope="tests")) == []

    def test_examples_are_checked(self):
        source = "def helper(rng):\n    return rng\n"
        assert rule_ids(lint_snippet(source, scope="examples")) == ["RP302"]


def drift_project():
    return ProjectContext(
        classes={
            "UrlTimeline": ClassInfo(
                name="UrlTimeline",
                attrs={"url", "first_seen", "vt_final"},
                bases=["object"],
            ),
        },
    )


class TestRP303SchemaDrift:
    def test_unknown_attribute_flagged(self):
        source = (
            "def export(timeline: UrlTimeline):\n"
            "    return timeline.first_seen_minute\n"
        )
        report = lint_snippet(source, project=drift_project())
        assert rule_ids(report) == ["RP303"]
        assert "first_seen_minute" in report.findings[0].message

    def test_declared_fields_and_methods_clean(self):
        source = (
            "def export(timeline: UrlTimeline):\n"
            "    return {'u': timeline.url, 'v': timeline.vt_final()}\n"
        )
        assert rule_ids(lint_snippet(source, project=drift_project())) == []

    def test_sequence_element_binding(self):
        source = (
            "from typing import Sequence\n"
            "def export(timelines: Sequence[UrlTimeline]):\n"
            "    return [t.removed_at for t in timelines]\n"
        )
        assert rule_ids(lint_snippet(source, project=drift_project())) == ["RP303"]

    def test_rebound_parameter_exempt(self):
        source = (
            "def export(timeline: UrlTimeline):\n"
            "    timeline = wrap(timeline)\n"
            "    return timeline.whatever\n"
        )
        assert rule_ids(lint_snippet(source, project=drift_project())) == []

    def test_unknown_class_exempt(self):
        source = (
            "def export(thing: SomethingElse):\n"
            "    return thing.whatever\n"
        )
        assert rule_ids(lint_snippet(source, project=drift_project())) == []

    def test_open_class_exempt(self):
        project = ProjectContext(
            classes={
                "Mystery": ClassInfo(
                    name="Mystery", attrs={"x"}, bases=["ExternalBase"]
                ),
            },
        )
        source = "def f(m: Mystery):\n    return m.anything\n"
        assert rule_ids(lint_snippet(source, project=project)) == []

    def test_real_project_context_covers_export_module(self):
        """The real class table must know UrlTimeline well enough to keep
        analysis/export.py clean (the module that motivated the rule)."""
        package_dir = Path(__file__).resolve().parents[2] / "src" / "repro"
        project = ProjectContext.build(package_dir)
        surface = project.attribute_surface("UrlTimeline")
        assert surface is not None
        assert {"url", "platform", "blocklist_offsets", "vt_final"} <= surface
        assert "no_such_field" not in surface


SERVE_PATH = "src/repro/serve/service.py"


class TestRP304RawCacheKey:
    def test_raw_string_key_flagged(self):
        source = "hit = self.cache.lookup('https://a.weebly.com/', now)\n"
        assert rule_ids(lint_snippet(source, path=SERVE_PATH)) == ["RP304"]

    def test_fstring_key_flagged(self):
        source = "self.exact_tier.put(f'{url.host}/{url.path}', verdict, now)\n"
        assert rule_ids(lint_snippet(source, path=SERVE_PATH)) == ["RP304"]

    def test_str_call_key_flagged(self):
        source = "cache.store(str(url), verdict, now)\n"
        assert rule_ids(lint_snippet(source, path=SERVE_PATH)) == ["RP304"]

    def test_concatenation_and_keyword_flagged(self):
        source = "tier.evict(key='host' + suffix)\n"
        assert rule_ids(lint_snippet(source, path=SERVE_PATH)) == ["RP304"]

    def test_normalized_key_clean(self):
        source = (
            "self.cache.store(cache_key(url), verdict, now)\n"
            "self.negative.evict(domain_key(url))\n"
            "self.cache.invalidate_blocked(key)\n"
        )
        assert rule_ids(lint_snippet(source, path=SERVE_PATH)) == []

    def test_inactive_outside_serve_layer(self):
        source = "self.cache.lookup('https://a.weebly.com/', now)\n"
        assert rule_ids(lint_snippet(source)) == []  # canonical library path

    def test_non_cache_receiver_ignored(self):
        source = "registry.get('https://a.weebly.com/')\n"
        assert rule_ids(lint_snippet(source, path=SERVE_PATH)) == []

    def test_suppressible(self):
        source = (
            "cache.store('sentinel', verdict, now)"
            "  # reprolint: disable=RP304 — synthetic fixture key\n"
        )
        assert rule_ids(lint_snippet(source, path=SERVE_PATH)) == []


FEATURES_PATH = "src/repro/core/features.py"
PREPROCESS_PATH = "src/repro/core/preprocess.py"


class TestRP304FeatureCacheLayer:
    """The feature-cache layer (core/features.py, core/preprocess.py) is
    in RP304 scope: its keys must come from ``snapshot_key()``."""

    def test_raw_subscript_store_flagged(self):
        source = "self._cache[f'{url}:{markup}'] = features\n"
        assert rule_ids(lint_snippet(source, path=FEATURES_PATH)) == ["RP304"]

    def test_raw_key_in_preprocess_flagged(self):
        source = "self._page_cache[str(url)] = page\n"
        assert rule_ids(lint_snippet(source, path=PREPROCESS_PATH)) == ["RP304"]

    def test_raw_move_to_end_flagged(self):
        source = "self._cache.move_to_end(str(url))\n"
        assert rule_ids(lint_snippet(source, path=FEATURES_PATH)) == ["RP304"]

    def test_snapshot_key_clean(self):
        source = (
            "key = snapshot_key(url, markup)\n"
            "self._cache[key] = features\n"
            "self._cache.move_to_end(key)\n"
            "cached = self._page_cache[key]\n"
        )
        assert rule_ids(lint_snippet(source, path=FEATURES_PATH)) == []
        assert rule_ids(lint_snippet(source, path=PREPROCESS_PATH)) == []

    def test_other_core_modules_out_of_scope(self):
        source = "self._cache['raw'] = features\n"
        assert rule_ids(
            lint_snippet(source, path="src/repro/core/classifier.py")
        ) == []

    def test_serve_layer_subscript_flagged(self):
        source = "self.exact_cache['https://a.weebly.com/'] = verdict\n"
        assert rule_ids(lint_snippet(source, path=SERVE_PATH)) == ["RP304"]

    def test_non_cache_subscript_ignored(self):
        source = "self._archive['raw'] = page\n"
        assert rule_ids(lint_snippet(source, path=PREPROCESS_PATH)) == []
