"""Suppression directive parsing and application."""

from repro.lint import SuppressionIndex

from .snippets import lint_snippet, rule_ids


class TestDirectiveParsing:
    def test_single_rule_with_reason(self):
        index = SuppressionIndex.from_source(
            "x = 1  # reprolint: disable=RP101 — timing metadata\n"
        )
        assert index.find("RP101", 1) == (True, "timing metadata")
        assert index.find("RP102", 1) is None

    def test_multiple_rules_one_directive(self):
        index = SuppressionIndex.from_source(
            "x = 1  # reprolint: disable=RP101,RP403 - both fine here\n"
        )
        assert index.find("RP101", 1) is not None
        assert index.find("RP403", 1) is not None

    def test_reason_optional(self):
        index = SuppressionIndex.from_source("x = 1  # reprolint: disable=RP401\n")
        assert index.find("RP401", 1) == (True, None)

    def test_hash_inside_string_not_a_directive(self):
        index = SuppressionIndex.from_source(
            's = "# reprolint: disable=RP101"\n'
        )
        assert index.find("RP101", 1) is None

    def test_file_wide_directive(self):
        source = (
            "# reprolint: disable-file=RP301 — synthetic fixture names\n"
            "a = 1\n"
            "b = 2\n"
        )
        index = SuppressionIndex.from_source(source)
        assert index.find("RP301", 3) == (True, "synthetic fixture names")

    def test_malformed_directive_ignored(self):
        index = SuppressionIndex.from_source("x = 1  # reprolint: disable=banana\n")
        assert index.line_rules == {}


class TestSuppressionApplication:
    def test_suppressed_finding_moves_to_suppressed_list(self):
        source = "import time\nt = time.time()  # reprolint: disable=RP101 — why not\n"
        report = lint_snippet(source)
        assert rule_ids(report) == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule_id == "RP101"
        assert report.suppressed[0].suppress_reason == "why not"

    def test_suppression_of_other_rule_does_not_apply(self):
        source = "import time\nt = time.time()  # reprolint: disable=RP102\n"
        assert rule_ids(lint_snippet(source)) == ["RP101"]

    def test_multiline_statement_span_covered(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(\n"
            ")  # reprolint: disable=RP103 — demo of span suppression\n"
        )
        report = lint_snippet(source)
        assert rule_ids(report) == []
        assert len(report.suppressed) == 1

    def test_suppressed_findings_do_not_affect_exit_code(self):
        source = "import time\nt = time.time()  # reprolint: disable=RP101 — ok\n"
        assert lint_snippet(source).exit_code() == 0
