"""Fixtures for the reprolint test suite."""

import pytest

from .snippets import lint_snippet


@pytest.fixture
def lint():
    return lint_snippet
