"""Interprocedural rules: RP105, RP110, RP111, RP210 + flow machinery.

Fixtures are small on-disk project trees (the flow engine resolves
imports across real files), exercising: call-graph resolution through
aliased imports, methods, and partials; taint across ≥3-deep
cross-module chains with the full call path in the message; suppression
at taint origins and sinks; the content-hash cache (warm identical to
cold, invalidation on edit); the ratcheted baseline; and the
``--graph-dump`` round trip.
"""

from __future__ import annotations

import json
import textwrap

from repro.lint.cli import main as lint_main
from repro.lint.flow.cache import SummaryCache
from repro.lint.flow.engine import FlowEngine
from repro.lint.visitor import run_lint


def make_project(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def flow_report(root, enabled=None):
    engine = FlowEngine(root, enabled=enabled)
    return engine.run()


def rule_ids(report):
    return sorted(f.rule_id for f in report.findings)


# ---------------------------------------------------------------------------
# Call-graph resolution
# ---------------------------------------------------------------------------

class TestCallGraph:
    def _graph(self, tmp_path, files):
        engine = FlowEngine(make_project(tmp_path, files))
        engine.build()
        return engine.graph

    def test_aliased_imports(self, tmp_path):
        graph = self._graph(tmp_path, {
            "src/repro/util.py": """
                def helper():
                    return 1
            """,
            "src/repro/a.py": """
                from repro.util import helper as h
                import repro.util as u

                def via_from():
                    return h()

                def via_module():
                    return u.helper()
            """,
        })
        pairs = {(e.caller, e.callee) for e in graph.edges}
        assert ("repro.a.via_from", "repro.util.helper") in pairs
        assert ("repro.a.via_module", "repro.util.helper") in pairs

    def test_method_resolution_through_base_class(self, tmp_path):
        graph = self._graph(tmp_path, {
            "src/repro/base.py": """
                class Base:
                    def helper(self):
                        return 1
            """,
            "src/repro/child.py": """
                from repro.base import Base

                class Child(Base):
                    def run(self):
                        return self.helper()
            """,
        })
        pairs = {(e.caller, e.callee) for e in graph.edges}
        assert ("repro.child.Child.run", "repro.base.Base.helper") in pairs

    def test_typed_receiver_and_attribute_walk(self, tmp_path):
        graph = self._graph(tmp_path, {
            "src/repro/svc.py": """
                class Service:
                    def ping(self):
                        return 1
            """,
            "src/repro/app.py": """
                from repro.svc import Service

                class App:
                    def __init__(self):
                        self.svc = Service()

                    def go(self):
                        return self.svc.ping()

                def direct(svc: Service):
                    return svc.ping()
            """,
        })
        pairs = {(e.caller, e.callee) for e in graph.edges}
        assert ("repro.app.App.go", "repro.svc.Service.ping") in pairs
        assert ("repro.app.direct", "repro.svc.Service.ping") in pairs

    def test_functools_partial_bindings(self, tmp_path):
        graph = self._graph(tmp_path, {
            "src/repro/util.py": """
                from functools import partial

                def helper(x):
                    return x

                bound = partial(helper, 1)
            """,
            "src/repro/a.py": """
                from functools import partial
                from repro.util import bound, helper

                def module_level():
                    return bound()

                def function_local():
                    f = partial(helper, 2)
                    return f()
            """,
        })
        pairs = {(e.caller, e.callee) for e in graph.edges}
        assert ("repro.a.module_level", "repro.util.helper") in pairs
        assert ("repro.a.function_local", "repro.util.helper") in pairs


# ---------------------------------------------------------------------------
# RP105 — transitive wall clock
# ---------------------------------------------------------------------------

_CHAIN = {
    "src/repro/c.py": """
        import time

        def leaf():
            return time.time()
    """,
    "src/repro/b.py": """
        from repro.c import leaf

        def middle():
            return leaf()
    """,
    "src/repro/a.py": """
        from repro.b import middle

        def top():
            return middle()
    """,
}


class TestTransitiveWallClock:
    def test_three_deep_chain_reports_full_path(self, tmp_path):
        report = flow_report(make_project(tmp_path, _CHAIN))
        assert rule_ids(report) == ["RP105", "RP105"]
        by_path = {f.path: f for f in report.findings}
        top = by_path["src/repro/a.py"]
        assert "a.top -> b.middle -> c.leaf" in top.message
        assert "time.time" in top.message
        assert "src/repro/c.py:5" in top.message
        middle = by_path["src/repro/b.py"]
        assert "b.middle -> c.leaf" in middle.message

    def test_direct_source_is_not_double_reported(self, tmp_path):
        # leaf() has the clock read itself: RP101's finding, not RP105's.
        report = flow_report(make_project(tmp_path, _CHAIN))
        assert not any(f.path == "src/repro/c.py" for f in report.findings)

    def test_clean_tree_has_no_findings(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/a.py": """
                def pure(x):
                    return x + 1
            """,
        })
        assert rule_ids(flow_report(root)) == []

    def test_sink_suppression_shields_upstream_callers(self, tmp_path):
        files = dict(_CHAIN)
        files["src/repro/b.py"] = """
            from repro.c import leaf

            def middle():
                return leaf()  # reprolint: disable=RP105 — profiling boundary, sim mode never reaches it
        """
        report = flow_report(make_project(tmp_path, files))
        assert rule_ids(report) == []
        hits = [f for f in report.suppressed if f.rule_id == "RP105"]
        assert len(hits) == 1
        assert hits[0].path == "src/repro/b.py"
        assert hits[0].suppress_reason is not None

    def test_origin_suppression_kills_the_whole_cone(self, tmp_path):
        files = dict(_CHAIN)
        files["src/repro/c.py"] = """
            import time

            def leaf():
                return time.time()  # reprolint: disable=RP101,RP105 — measures real latency by design
        """
        report = flow_report(make_project(tmp_path, files))
        assert rule_ids(report) == []
        assert any(
            f.rule_id == "RP105" and f.path == "src/repro/c.py"
            for f in report.suppressed
        )


# ---------------------------------------------------------------------------
# RP110 — RNG seed provenance
# ---------------------------------------------------------------------------

class TestRngProvenance:
    def test_literal_seed_at_mint_is_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/rng.py": """
                import numpy as np

                def make():
                    return np.random.default_rng(42)
            """,
        })
        report = flow_report(root, enabled=["RP110"])
        assert rule_ids(report) == ["RP110"]
        assert "hardcoded literal 42" in report.findings[0].message

    def test_literal_traced_through_parameter_chain(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/rng.py": """
                import numpy as np

                def make(seed):
                    return np.random.default_rng(seed)
            """,
            "src/repro/use.py": """
                from repro.rng import make

                def bad():
                    return make(42)
            """,
        })
        report = flow_report(root)
        # The call site is reported exactly once: RP110 owns it, RP111
        # must not double-report the same literal.
        assert rule_ids(report) == ["RP110"]
        finding = report.findings[0]
        assert finding.path == "src/repro/use.py"
        assert "use.bad -> rng.make" in finding.message
        assert "hardcoded literal 42" in finding.message

    def test_sanctioned_provenance_is_clean(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/rng.py": """
                import numpy as np

                SEED = 7

                def from_bank(bank):
                    return np.random.default_rng(bank.child_seed("x"))

                def from_attr(self_like):
                    return np.random.default_rng(self_like.seed)

                def from_constant():
                    return np.random.default_rng(SEED)

                def derived(base, k):
                    return np.random.default_rng(base.seed + 97 * k)
            """,
        })
        assert rule_ids(flow_report(root, enabled=["RP110"])) == []

    def test_unused_parameter_seed_is_clean(self, tmp_path):
        # A seed parameter nobody binds stays a demand, not a finding.
        root = make_project(tmp_path, {
            "src/repro/rng.py": """
                import numpy as np

                def make(seed):
                    return np.random.default_rng(seed)
            """,
        })
        assert rule_ids(flow_report(root, enabled=["RP110"])) == []


# ---------------------------------------------------------------------------
# RP111 — hardcoded seed at a call site
# ---------------------------------------------------------------------------

class TestHardcodedSeedArgs:
    def test_keyword_literal_into_project_class(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/model.py": """
                class Forest:
                    def __init__(self, n, random_state=None):
                        self.n = n
                        self.random_state = random_state
            """,
            "src/repro/train.py": """
                from repro.model import Forest

                def fit():
                    return Forest(10, random_state=7)
            """,
        })
        report = flow_report(root, enabled=["RP111"])
        assert rule_ids(report) == ["RP111"]
        assert "hardcoded seed 7" in report.findings[0].message
        assert report.findings[0].path == "src/repro/train.py"

    def test_positional_literal_into_seed_param(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/gen.py": """
                def stream(seed):
                    return seed
            """,
            "src/repro/use.py": """
                from repro.gen import stream

                def go():
                    return stream(3)
            """,
        })
        report = flow_report(root, enabled=["RP111"])
        assert rule_ids(report) == ["RP111"]

    def test_defaults_and_derived_values_are_exempt(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/model.py": """
                class Forest:
                    def __init__(self, n=5, random_state=7):
                        self.n = n
                        self.random_state = random_state
            """,
            "src/repro/train.py": """
                from repro.model import Forest

                def default_applies():
                    return Forest(10)

                def derived(bank):
                    return Forest(10, random_state=bank.child_seed("m"))
            """,
        })
        assert rule_ids(flow_report(root, enabled=["RP111"])) == []

    def test_unresolved_external_callee_is_not_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/train.py": """
                import sklearn.ensemble as ens

                def fit():
                    return ens.RandomForestClassifier(random_state=0)
            """,
        })
        assert rule_ids(flow_report(root, enabled=["RP111"])) == []


# ---------------------------------------------------------------------------
# RP210 — simnet purity
# ---------------------------------------------------------------------------

class TestSimnetPurity:
    def test_direct_io_in_simnet(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/simnet/store.py": """
                def persist(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
            """,
        })
        report = flow_report(root, enabled=["RP210"])
        assert rule_ids(report) == ["RP210"]
        assert "open" in report.findings[0].message

    def test_transitive_impurity_reached_from_simnet(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/disk.py": """
                def dump(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
            """,
            "src/repro/simnet/crawl.py": """
                from repro.disk import dump

                def snapshot(path, page):
                    dump(path, page)
            """,
        })
        report = flow_report(root, enabled=["RP210"])
        assert rule_ids(report) == ["RP210"]
        finding = report.findings[0]
        # Flagged at the simnet call site, not inside the non-simnet helper.
        assert finding.path == "src/repro/simnet/crawl.py"
        assert "simnet.crawl.snapshot -> disk.dump" in finding.message

    def test_global_write_in_simnet(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/simnet/state.py": """
                _COUNTER = 0

                def bump():
                    global _COUNTER
                    _COUNTER = _COUNTER + 1
            """,
        })
        report = flow_report(root, enabled=["RP210"])
        assert rule_ids(report) == ["RP210"]
        assert "module global" in report.findings[0].message

    def test_impurity_outside_simnet_is_allowed(self, tmp_path):
        root = make_project(tmp_path, {
            "src/repro/export.py": """
                def dump(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
            """,
        })
        assert rule_ids(flow_report(root, enabled=["RP210"])) == []


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------

class TestSummaryCache:
    def test_warm_run_is_byte_identical_and_hits_cache(self, tmp_path):
        root = make_project(tmp_path, _CHAIN)
        cache_path = tmp_path / "cache.json"

        cold = FlowEngine(root, cache=SummaryCache(cache_path))
        cold_report = cold.run()
        assert cold.cache.hits == 0 and cold.cache.misses == 3

        warm = FlowEngine(root, cache=SummaryCache(cache_path))
        warm_report = warm.run()
        assert warm.cache.hits == 3 and warm.cache.misses == 0
        assert warm_report.render_json() == cold_report.render_json()

    def test_edit_invalidates_only_that_file(self, tmp_path):
        root = make_project(tmp_path, _CHAIN)
        cache_path = tmp_path / "cache.json"
        FlowEngine(root, cache=SummaryCache(cache_path)).run()

        # Fix the leak; the edited file must miss, the others must hit.
        (root / "src/repro/c.py").write_text("def leaf():\n    return 1\n")
        engine = FlowEngine(root, cache=SummaryCache(cache_path))
        report = engine.run()
        assert engine.cache.misses == 1 and engine.cache.hits == 2
        assert rule_ids(report) == []

    def test_corrupt_cache_falls_back_to_cold(self, tmp_path):
        root = make_project(tmp_path, _CHAIN)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        engine = FlowEngine(root, cache=SummaryCache(cache_path))
        report = engine.run()
        assert rule_ids(report) == ["RP105", "RP105"]


# ---------------------------------------------------------------------------
# Baseline & ratchet (through the CLI, for the exit-code contract)
# ---------------------------------------------------------------------------

class TestBaselineRatchet:
    def _cli(self, root, *extra):
        return lint_main([
            str(root / "src"), "--project-root", str(root), "--no-cache",
            *extra,
        ])

    def test_baselined_findings_pass_new_ones_fail(self, tmp_path, capsys):
        root = make_project(tmp_path, _CHAIN)
        baseline = root / "lint-baseline.json"

        # Snapshot the existing debt, then ratchet against it: clean.
        assert self._cli(root, "--write-baseline") == 0
        assert baseline.exists()
        assert self._cli(root, "--ratchet") == 0
        out = capsys.readouterr().out
        assert "baselined" in out

        # A new violation is a regression: the ratchet must fail.
        (root / "src/repro/fresh.py").write_text(
            "import time\n\ndef now():\n    return time.time()\n"
        )
        assert self._cli(root, "--ratchet") == 2
        out = capsys.readouterr().out
        # Only the regression is an active finding; old debt stays baselined.
        assert "fresh.py" in out

    def test_missing_baseline_is_empty(self, tmp_path, capsys):
        root = make_project(tmp_path, _CHAIN)
        assert self._cli(root, "--ratchet") == 2

    def test_corrupt_baseline_is_an_internal_error(self, tmp_path, capsys):
        root = make_project(tmp_path, _CHAIN)
        (root / "lint-baseline.json").write_text('{"schema": "bogus"}')
        assert self._cli(root, "--ratchet") == 3


# ---------------------------------------------------------------------------
# Graph dump + run_lint integration
# ---------------------------------------------------------------------------

class TestGraphDumpAndIntegration:
    def test_graph_dump_json_round_trips(self, tmp_path, capsys):
        root = make_project(tmp_path, _CHAIN)
        rc = lint_main([
            str(root / "src"), "--project-root", str(root), "--no-cache",
            "--graph-dump", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint.flow/callgraph.v1"
        edges = {(e["from"], e["to"]) for e in payload["edges"]}
        assert ("repro.a.top", "repro.b.middle") in edges
        assert ("repro.b.middle", "repro.c.leaf") in edges
        assert set(payload["nodes"]) >= {"repro.a.top", "repro.b.middle"}

    def test_graph_dump_dot_names_edges(self, tmp_path, capsys):
        root = make_project(tmp_path, _CHAIN)
        rc = lint_main([
            str(root / "src"), "--project-root", str(root), "--no-cache",
            "--graph-dump", "dot",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"repro.a.top" -> "repro.b.middle"' in out
        assert out.strip().startswith("digraph")

    def test_run_lint_merges_flow_findings(self, tmp_path):
        root = make_project(tmp_path, _CHAIN)
        with_flow = run_lint([root / "src"], project_root=root)
        assert "RP105" in rule_ids(with_flow)
        assert "RP101" in rule_ids(with_flow)  # per-file pass still runs
        without = run_lint([root / "src"], project_root=root, flow=False)
        assert "RP105" not in rule_ids(without)
