"""JSON reporter schema, exit-code semantics, and the CLI front end."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import RULES, RULES_BY_ID, Severity, select_rules
from repro.lint.cli import main
from repro.lint.report import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_INTERNAL,
    EXIT_WARNINGS,
    JSON_SCHEMA_VERSION,
)

from .snippets import lint_snippet

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_at_least_ten_distinct_rules(self):
        assert len({rule.id for rule in RULES}) >= 10

    def test_ids_unique_and_well_formed(self):
        ids = [rule.id for rule in RULES]
        assert len(ids) == len(set(ids))
        assert all(len(i) == 5 and i.startswith("RP") for i in ids)

    def test_every_rule_has_summary(self):
        assert all(rule.summary for rule in RULES)

    def test_every_rule_id_is_unit_tested(self):
        """Each registered rule must appear in a lint test module, so a new
        rule cannot land without violating+clean fixtures."""
        corpus = "".join(
            path.read_text()
            for path in (REPO_ROOT / "tests" / "lint").glob("test_rules_*.py")
        )
        untested = [rule.id for rule in RULES if rule.id not in corpus]
        assert not untested, f"rules without unit tests: {untested}"

    def test_family_selection(self):
        determinism = select_rules(select=["RP1"])
        assert {rule.id for rule in determinism} == {
            "RP101", "RP102", "RP103", "RP104", "RP105", "RP110", "RP111"
        }
        rest = select_rules(ignore=["RP1"])
        assert not any(rule.id.startswith("RP1") for rule in rest)
        assert RULES_BY_ID["RP403"] in rest


class TestJsonSchema:
    def test_finding_fields(self):
        report = lint_snippet("import time\nt = time.time()\n")
        payload = json.loads(report.render_json())
        assert payload["version"] == JSON_SCHEMA_VERSION
        (finding,) = payload["findings"]
        assert finding["rule"] == "RP101"
        assert finding["path"].endswith("module.py")
        assert finding["line"] == 2
        assert finding["severity"] == "error"
        assert "message" in finding and finding["col"] >= 1

    def test_summary_counts(self):
        source = (
            "import time\n"
            "t = time.time()\n"          # error
            "def f(xs=[]):\n"            # warning
            "    return xs\n"
        )
        payload = json.loads(lint_snippet(source).render_json())
        assert payload["summary"] == {
            "errors": 1, "warnings": 1, "suppressed": 0, "files": 1
        }


class TestExitCodes:
    def test_clean_is_zero(self):
        assert lint_snippet("x = 1\n").exit_code() == EXIT_CLEAN

    def test_errors_dominate(self):
        source = "import time\nt = time.time()\ndef f(xs=[]):\n    return xs\n"
        assert lint_snippet(source).exit_code() == EXIT_ERRORS

    def test_warnings_only(self):
        report = lint_snippet("def f(xs=[]):\n    return xs\n")
        assert report.exit_code() == EXIT_WARNINGS
        assert report.exit_code(fail_on=Severity.ERROR) == EXIT_CLEAN


class TestCliMain:
    def _write(self, tmp_path, name, source):
        path = tmp_path / name
        path.write_text(source)
        return path

    def test_json_format_on_violating_file(self, tmp_path, capsys):
        bad = self._write(
            tmp_path, "bad.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        code = main(["--format", "json", str(bad)])
        payload = json.loads(capsys.readouterr().out)
        assert code == EXIT_ERRORS
        assert [f["rule"] for f in payload["findings"]] == ["RP103"]

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.py", "x = 1\n")
        assert main([str(good)]) == EXIT_CLEAN
        assert "0 errors" in capsys.readouterr().out

    def test_select_filters_rules(self, tmp_path, capsys):
        bad = self._write(
            tmp_path, "bad.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert main(["--select", "RP4", str(bad)]) == EXIT_CLEAN
        capsys.readouterr()

    def test_missing_path_is_internal_error(self, capsys):
        assert main(["/no/such/path.py"]) == EXIT_INTERNAL
        capsys.readouterr()

    def test_unknown_selector_is_internal_error(self, tmp_path, capsys):
        """A typo'd --select must not silently select zero rules and pass."""
        bad = self._write(
            tmp_path, "bad.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert main(["--select", "RPX", str(bad)]) == EXIT_INTERNAL
        assert "no rule matches" in capsys.readouterr().out
        assert main(["--ignore", "RP9", str(bad)]) == EXIT_INTERNAL
        capsys.readouterr()

    def test_rootless_file_keeps_its_name(self, tmp_path, capsys):
        """Without a pyproject/.git above, findings must still name the
        file, not collapse its relative path to '.'."""
        bad = self._write(tmp_path, "bad.py", "def f(:\n")
        code = main(["--format", "json", str(bad)])
        payload = json.loads(capsys.readouterr().out)
        assert code == EXIT_ERRORS
        assert payload["findings"][0]["path"].endswith("bad.py")

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.id in out

    def test_syntax_error_reported_not_crashed(self, tmp_path, capsys):
        bad = self._write(tmp_path, "broken.py", "def f(:\n")
        code = main(["--format", "json", str(bad)])
        payload = json.loads(capsys.readouterr().out)
        assert code == EXIT_ERRORS
        assert payload["findings"][0]["rule"] == "RP000"


class TestConsoleEntryPoint:
    def test_module_invocation_parses_json_format(self, tmp_path):
        """Smoke test for the freephish-lint entry point: ``python -m
        repro.lint --format json`` on a tiny violating tree."""
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--format", "json", str(bad)],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=str(REPO_ROOT),
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == EXIT_ERRORS, result.stderr
        payload = json.loads(result.stdout)
        assert payload["summary"]["errors"] == 1

    def test_entry_point_declared_in_pyproject(self):
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert 'freephish-lint = "repro.lint.cli:main"' in text
