"""RP1xx determinism rules: wall clock, stdlib random, unseeded/legacy RNG."""

from .snippets import lint_snippet, rule_ids


class TestRP101WallClock:
    def test_time_time_flagged_in_library(self):
        report = lint_snippet("import time\nt = time.time()\n")
        assert rule_ids(report) == ["RP101"]
        assert report.findings[0].line == 2

    def test_datetime_now_flagged(self):
        source = (
            "from datetime import datetime\n"
            "stamp = datetime.now()\n"
        )
        assert rule_ids(lint_snippet(source)) == ["RP101"]

    def test_qualified_datetime_and_date_today(self):
        source = (
            "import datetime\n"
            "a = datetime.datetime.utcnow()\n"
            "b = datetime.date.today()\n"
        )
        assert rule_ids(lint_snippet(source)) == ["RP101", "RP101"]

    def test_from_time_import_flagged(self):
        assert rule_ids(lint_snippet("from time import perf_counter\n")) == ["RP101"]

    def test_clean_simulated_clock(self):
        source = "def step(now: int) -> int:\n    return now + 10\n"
        assert rule_ids(lint_snippet(source)) == []

    def test_benchmarks_may_time_themselves(self):
        source = "import time\nt = time.perf_counter()\n"
        assert rule_ids(lint_snippet(source, scope="benchmarks")) == []


class TestRP102StdlibRandom:
    def test_import_random_flagged(self):
        assert rule_ids(lint_snippet("import random\n")) == ["RP102"]

    def test_from_random_import_flagged(self):
        assert rule_ids(lint_snippet("from random import choice\n")) == ["RP102"]

    def test_random_call_flagged(self):
        source = "import random as r\nx = random.random()\n"
        # both the import (aliased name is still `random`) and the call
        assert "RP102" in rule_ids(lint_snippet(source))

    def test_tests_may_use_stdlib_random(self):
        assert rule_ids(lint_snippet("import random\n", scope="tests")) == []

    def test_numpy_random_attribute_not_confused(self):
        source = (
            "import numpy as np\n"
            "def draw(rng: np.random.Generator) -> float:\n"
            "    return float(rng.random())\n"
        )
        assert rule_ids(lint_snippet(source)) == []


class TestRP103UnseededDefaultRng:
    def test_unseeded_flagged_everywhere(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        for scope in ("library", "tests", "examples", "benchmarks"):
            assert rule_ids(lint_snippet(source, scope=scope)) == ["RP103"], scope

    def test_seeded_is_clean(self):
        source = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert rule_ids(lint_snippet(source)) == []

    def test_seed_sequence_argument_is_clean(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(np.random.SeedSequence([1, 2]))\n"
        )
        assert rule_ids(lint_snippet(source)) == []

    def test_bare_name_call_flagged(self):
        source = (
            "from numpy.random import default_rng\n"
            "rng = default_rng()\n"
        )
        assert rule_ids(lint_snippet(source)) == ["RP103"]


class TestRP104LegacyNumpyRandom:
    def test_legacy_global_calls_flagged(self):
        source = (
            "import numpy as np\n"
            "np.random.seed(0)\n"
            "x = np.random.randint(10)\n"
            "y = np.random.normal(0.0, 1.0)\n"
        )
        assert rule_ids(lint_snippet(source, scope="tests")) == [
            "RP104", "RP104", "RP104"
        ]

    def test_import_of_legacy_name_flagged(self):
        source = "from numpy.random import randint\n"
        assert rule_ids(lint_snippet(source)) == ["RP104"]

    def test_modern_api_is_clean(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(3)\n"
            "seq = np.random.SeedSequence([1, 2])\n"
            "x = rng.integers(10)\n"
        )
        assert rule_ids(lint_snippet(source)) == []
