"""Helpers for linting inline source snippets against a virtual tree."""

from __future__ import annotations

from pathlib import Path

from repro.lint import FileChecker, ProjectContext

VIRTUAL_ROOT = Path("/virtual-project")

_SCOPE_PATHS = {
    "library": "src/repro/module.py",
    "tests": "tests/test_module.py",
    "examples": "examples/example.py",
    "benchmarks": "benchmarks/bench_module.py",
    "scripts": "scripts/script.py",
    "other": "tools/helper.py",
}


def lint_snippet(source, scope="library", project=None, rules=None, path=None):
    """Lint ``source`` as if it lived at the canonical path for ``scope``.

    ``path`` (repo-relative) overrides the canonical path — for rules whose
    behaviour depends on the exact file location, like RP203's exemptions.
    """
    checker = FileChecker(
        project=project if project is not None else ProjectContext(),
        rules=rules,
        project_root=VIRTUAL_ROOT,
    )
    rel = path if path is not None else _SCOPE_PATHS[scope]
    return checker.check(VIRTUAL_ROOT / rel, source=source)


def rule_ids(report):
    return sorted(f.rule_id for f in report.findings)
