"""RP2xx simulation-purity rules: forbidden imports, environment access."""

from .snippets import lint_snippet, rule_ids


class TestRP201ForbiddenImport:
    def test_requests_flagged(self):
        assert rule_ids(lint_snippet("import requests\n")) == ["RP201"]

    def test_socket_and_subprocess_flagged(self):
        source = "import socket\nimport subprocess\n"
        assert rule_ids(lint_snippet(source)) == ["RP201", "RP201"]

    def test_urllib_request_flagged_but_parse_allowed(self):
        assert rule_ids(lint_snippet("import urllib.request\n")) == ["RP201"]
        assert rule_ids(lint_snippet("from urllib.request import urlopen\n")) == ["RP201"]
        assert rule_ids(lint_snippet("from urllib import request\n")) == ["RP201"]
        assert rule_ids(lint_snippet("from urllib.parse import urlsplit\n")) == []

    def test_http_client_flagged(self):
        assert rule_ids(lint_snippet("from http.client import HTTPConnection\n")) == ["RP201"]

    def test_tests_may_use_subprocess(self):
        assert rule_ids(lint_snippet("import subprocess\n", scope="tests")) == []

    def test_simnet_style_imports_clean(self):
        source = (
            "from repro.simnet.web import Web\n"
            "from repro.simnet.browser import Browser\n"
        )
        assert rule_ids(lint_snippet(source)) == []


class TestRP203PrintInLibrary:
    def test_print_flagged(self):
        assert rule_ids(lint_snippet("print('progress')\n")) == ["RP203"]

    def test_print_in_function_flagged(self):
        source = "def run(verbose):\n    if verbose:\n        print('tick')\n"
        assert rule_ids(lint_snippet(source)) == ["RP203"]

    def test_report_renderer_exempt(self):
        assert rule_ids(lint_snippet(
            "print('table')\n", path="src/repro/analysis/report.py"
        )) == []

    def test_cli_exempt(self):
        assert rule_ids(lint_snippet(
            "print('usage')\n", path="src/repro/cli.py"
        )) == []

    def test_lint_package_exempt(self):
        assert rule_ids(lint_snippet(
            "print('findings')\n", path="src/repro/lint/cli.py"
        )) == []

    def test_tests_may_print(self):
        assert rule_ids(lint_snippet("print('debug')\n", scope="tests")) == []

    def test_shadowed_print_method_clean(self):
        source = "class Doc:\n    def render(self, printer):\n        printer.print('x')\n"
        assert rule_ids(lint_snippet(source)) == []


class TestRP202EnvironmentAccess:
    def test_os_environ_read_flagged(self):
        source = "import os\nlevel = os.environ['LEVEL']\n"
        assert rule_ids(lint_snippet(source)) == ["RP202"]

    def test_os_environ_get_flagged_once(self):
        source = "import os\nlevel = os.environ.get('LEVEL')\n"
        assert rule_ids(lint_snippet(source)) == ["RP202"]

    def test_os_getenv_flagged(self):
        source = "import os\nlevel = os.getenv('LEVEL', '1')\n"
        assert rule_ids(lint_snippet(source)) == ["RP202"]

    def test_scripts_may_read_environment(self):
        source = "import os\nlevel = os.getenv('LEVEL')\n"
        assert rule_ids(lint_snippet(source, scope="scripts")) == []

    def test_os_path_usage_clean(self):
        source = "import os\np = os.path.join('a', 'b')\n"
        assert rule_ids(lint_snippet(source)) == []
