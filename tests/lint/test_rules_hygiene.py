"""RP4xx hygiene rules: mutable defaults, bare except, library asserts."""

from repro.lint import Severity

from .snippets import lint_snippet, rule_ids


class TestRP401MutableDefault:
    def test_list_literal_default_flagged(self):
        source = "def f(items=[]):\n    return items\n"
        report = lint_snippet(source, scope="tests")
        assert rule_ids(report) == ["RP401"]
        assert report.findings[0].severity is Severity.WARNING

    def test_dict_and_set_defaults_flagged(self):
        source = "def f(a={}, b={1}):\n    return a, b\n"
        assert rule_ids(lint_snippet(source)) == ["RP401", "RP401"]

    def test_factory_call_default_flagged(self):
        source = "def f(items=list()):\n    return items\n"
        assert rule_ids(lint_snippet(source)) == ["RP401"]

    def test_kwonly_default_flagged(self):
        source = "def f(*, items=[]):\n    return items\n"
        assert rule_ids(lint_snippet(source)) == ["RP401"]

    def test_none_default_clean(self):
        source = (
            "def f(items=None):\n"
            "    return [] if items is None else items\n"
        )
        assert rule_ids(lint_snippet(source)) == []

    def test_tuple_default_clean(self):
        source = "def f(names=('a', 'b')):\n    return names\n"
        assert rule_ids(lint_snippet(source)) == []


class TestRP402BareExcept:
    def test_bare_except_flagged_in_all_scopes(self):
        source = "try:\n    x = 1\nexcept:\n    pass\n"
        for scope in ("library", "tests", "examples"):
            assert rule_ids(lint_snippet(source, scope=scope)) == ["RP402"], scope

    def test_typed_except_clean(self):
        source = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
        assert rule_ids(lint_snippet(source)) == []

    def test_broad_but_named_exception_clean(self):
        source = "try:\n    x = 1\nexcept Exception:\n    pass\n"
        assert rule_ids(lint_snippet(source)) == []


class TestRP403LibraryAssert:
    def test_assert_flagged_in_library(self):
        source = "def f(x):\n    assert x > 0\n    return x\n"
        report = lint_snippet(source)
        assert rule_ids(report) == ["RP403"]
        assert report.findings[0].severity is Severity.WARNING

    def test_tests_keep_their_asserts(self):
        source = "def test_f():\n    assert 1 + 1 == 2\n"
        assert rule_ids(lint_snippet(source, scope="tests")) == []

    def test_raise_instead_is_clean(self):
        source = (
            "def f(x):\n"
            "    if x <= 0:\n"
            "        raise ValueError('x must be positive')\n"
            "    return x\n"
        )
        assert rule_ids(lint_snippet(source)) == []
