"""Shared fixtures.

Expensive artefacts (populated worlds, ground-truth corpora, campaign
results) are session-scoped so the suite stays fast while many tests can
assert against realistic data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.sim import CampaignWorld, build_ground_truth
from repro.simnet import Browser, Web
from repro.sitegen import (
    LegitimateSiteGenerator,
    PhishingKitGenerator,
    PhishingSiteGenerator,
)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture()
def web() -> Web:
    return Web()


@pytest.fixture()
def browser(web: Web) -> Browser:
    return Browser(web)


@pytest.fixture()
def phishing_generator() -> PhishingSiteGenerator:
    return PhishingSiteGenerator()


@pytest.fixture()
def benign_generator() -> LegitimateSiteGenerator:
    return LegitimateSiteGenerator()


@pytest.fixture()
def kit_generator() -> PhishingKitGenerator:
    return PhishingKitGenerator()


@pytest.fixture(scope="session")
def ground_truth():
    """A small but realistic featurized ground-truth corpus."""
    return build_ground_truth(n_per_class=80, seed=3)


@pytest.fixture(scope="session")
def campaign_result():
    """A short end-to-end measurement campaign (shared across tests)."""
    config = SimulationConfig(seed=9, duration_days=2, target_fwb_phishing=120)
    world = CampaignWorld(config, train_samples_per_class=80)
    return world.run()


@pytest.fixture(scope="session")
def campaign_world_and_result():
    config = SimulationConfig(seed=17, duration_days=1, target_fwb_phishing=60)
    world = CampaignWorld(config, train_samples_per_class=60)
    result = world.run()
    return world, result
