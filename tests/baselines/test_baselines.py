"""The four Table-2 comparison detectors."""

import numpy as np
import pytest

from repro.baselines import (
    BaseStackModelDetector,
    PhishIntentionDetector,
    URLNetDetector,
    VisualPhishNetDetector,
)
from repro.errors import NotFittedError
from repro.ml import train_test_split
from repro.simnet import Browser


@pytest.fixture(scope="module")
def split(ground_truth):
    indices = np.arange(len(ground_truth.pages))
    tr, te, ytr, yte = train_test_split(
        indices.reshape(-1, 1), ground_truth.labels, test_size=0.3, random_state=5
    )
    train_pages = [ground_truth.pages[int(i)] for i in tr.ravel()]
    test_pages = [ground_truth.pages[int(i)] for i in te.ravel()]
    return train_pages, ytr, test_pages, yte


def _accuracy(detector, test_pages, yte):
    predictions = np.array([detector.predict_page(p) for p in test_pages])
    return float(np.mean(predictions == yte))


class TestURLNet:
    def test_learns_strong_lexical_signal(self):
        """On URLs with a clean token signal the CNN learns the boundary."""
        rng = np.random.default_rng(0)
        words = ["sunny", "maple", "corner", "happy", "blue", "craft"]
        benign = [
            f"https://{words[i % 6]}{i}.example.com/" for i in range(120)
        ]
        phish = [
            f"https://{words[i % 6]}{i}-login-verify.example.com/"
            for i in range(120)
        ]
        urls = benign + phish
        labels = np.array([0] * 120 + [1] * 120)
        order = rng.permutation(len(urls))
        urls = [urls[i] for i in order]
        labels = labels[order]
        detector = URLNetDetector(epochs=30, random_state=1)
        detector.fit_urls(urls[:180], labels[:180])
        probs = detector.predict_proba_urls(urls[180:])
        accuracy = np.mean((probs >= 0.5) == labels[180:])
        assert accuracy > 0.85

    def test_encoding_fixed_length(self):
        from repro.baselines.urlnet import encode_url

        encoded = encode_url("https://example.com/", max_len=30)
        assert encoded.shape == (30,)
        assert encode_url("x" * 500, max_len=30).shape == (30,)

    def test_unfitted_raises(self, split):
        _tr, _ytr, test_pages, _yte = split
        with pytest.raises(NotFittedError):
            URLNetDetector().predict_page(test_pages[0])

    def test_probabilities_bounded(self, split):
        train_pages, ytr, test_pages, _ = split
        detector = URLNetDetector(epochs=3, random_state=1)
        detector.fit_pages(train_pages, ytr)
        probs = detector.predict_proba_urls([str(p.url) for p in test_pages])
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_training_reduces_loss(self):
        """More epochs fit a clean lexical boundary better."""
        urls = [f"https://benign{i}.example.com/" for i in range(60)]
        urls += [f"https://verify-login{i}.example.com/" for i in range(60)]
        labels = np.array([0] * 60 + [1] * 60)
        few = URLNetDetector(epochs=1, random_state=1).fit_urls(urls, labels)
        many = URLNetDetector(epochs=30, random_state=1).fit_urls(urls, labels)
        acc_few = np.mean((few.predict_proba_urls(urls) >= 0.5) == labels)
        acc_many = np.mean((many.predict_proba_urls(urls) >= 0.5) == labels)
        assert acc_many >= acc_few
        assert acc_many > 0.9


class TestVisualPhishNet:
    def test_gallery_covers_catalog(self):
        detector = VisualPhishNetDetector()
        detector.build_gallery()
        assert len(detector._gallery) == 109

    def test_fit_and_reasonable_accuracy(self, split):
        train_pages, ytr, test_pages, yte = split
        detector = VisualPhishNetDetector(random_state=2)
        detector.fit_pages(train_pages, ytr)
        accuracy = _accuracy(detector, test_pages, yte)
        assert accuracy > 0.6

    def test_brand_own_domain_not_flagged(self, split, web, rng):
        """A page visually matching a brand but on its real domain is fine."""
        train_pages, ytr, _te, _yte = split
        detector = VisualPhishNetDetector(random_state=2)
        detector.fit_pages(train_pages, ytr)
        from repro.baselines.visualphishnet import _brand_login_markup
        from repro.core.preprocess import Preprocessor
        from repro.sitegen.templates import TemplateLibrary

        brand = detector.catalog.by_slug("paypaul")
        markup = _brand_login_markup(brand, TemplateLibrary(), rng)
        # Host the page at whatever brand the matcher deems nearest, so the
        # own-domain exemption is what decides the verdict.
        from repro.webdoc import render_signature

        slug, legit_domain, _dist = detector._nearest_brand(
            render_signature(markup)
        )
        site = web.self_hosting.create_site(
            legit_domain, owner=slug, now=0, registered_at=-10 ** 7
        )
        site.add_page("/", markup)
        page = Preprocessor(web).process(site.root_url, 5)
        assert detector.predict_page(page) == 0

    def test_unfitted_raises(self, split):
        with pytest.raises(NotFittedError):
            VisualPhishNetDetector().predict_page(split[2][0])


class TestPhishIntention:
    def test_high_accuracy_including_evasive(self, split, ground_truth):
        train_pages, ytr, test_pages, yte = split
        detector = PhishIntentionDetector(Browser(ground_truth.web), random_state=2)
        detector.fit_pages(train_pages, ytr)
        accuracy = _accuracy(detector, test_pages, yte)
        assert accuracy > 0.9

    def test_dynamic_phase_catches_two_step(self, ground_truth):
        """Pages whose credentials live one hop away are still flagged."""
        two_step_indices = [
            i for i, v in enumerate(ground_truth.variants) if v == "two_step"
        ]
        if not two_step_indices:
            pytest.skip("no two-step samples in this ground truth draw")
        detector = PhishIntentionDetector(Browser(ground_truth.web), random_state=2)
        detector.fit_pages(ground_truth.pages, ground_truth.labels)
        caught = sum(
            detector.predict_page(ground_truth.pages[i]) for i in two_step_indices
        )
        assert caught >= len(two_step_indices) * 0.6


class TestBaseStackModel:
    def test_uses_base_features(self, split):
        train_pages, ytr, test_pages, yte = split
        detector = BaseStackModelDetector(n_estimators=15, random_state=3)
        detector.fit_pages(train_pages, ytr)
        accuracy = _accuracy(detector, test_pages, yte)
        assert accuracy > 0.8

    def test_batch_prediction_matches_single(self, split):
        train_pages, ytr, test_pages, _ = split
        detector = BaseStackModelDetector(n_estimators=10, random_state=3)
        detector.fit_pages(train_pages, ytr)
        batch = detector.predict_pages(test_pages[:10])
        singles = [detector.predict_page(p) for p in test_pages[:10]]
        assert batch.tolist() == singles

    def test_unfitted_raises(self, split):
        with pytest.raises(NotFittedError):
            BaseStackModelDetector().predict_page(split[2][0])
