#!/usr/bin/env python
"""Validate a telemetry export against ``docs/telemetry.schema.json``.

CI runs this after the campaign smoke export. The container deliberately
has no third-party schema library, so this is a self-contained
interpreter of exactly the JSON-Schema subset the telemetry schema uses:

    type (string or list), enum, const, required, properties,
    additionalProperties (bool or schema), items, minimum

Usage::

    python scripts/validate_telemetry.py TELEMETRY.json [SCHEMA.json]

Exits 0 when the document validates, 1 with one line per violation
otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, List

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_SCHEMA = REPO_ROOT / "docs" / "telemetry.schema.json"

#: JSON type name -> Python type check. ``bool`` is excluded from the
#: numeric types: JSON booleans are not numbers even though Python's
#: ``bool`` subclasses ``int``.
def _is_type(value: Any, name: str) -> bool:
    if name == "object":
        return isinstance(value, dict)
    if name == "array":
        return isinstance(value, list)
    if name == "string":
        return isinstance(value, str)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "boolean":
        return isinstance(value, bool)
    if name == "null":
        return value is None
    raise ValueError(f"unsupported type name in schema: {name!r}")


def validate(instance: Any, schema: dict, path: str = "$") -> List[str]:
    """Return a list of violation messages; empty means valid."""
    errors: List[str] = []

    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']}")

    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_is_type(instance, name) for name in names):
            errors.append(
                f"{path}: expected type {'/'.join(names)}, "
                f"got {type(instance).__name__}"
            )
            return errors  # Structural checks below assume the right type.

    if "minimum" in schema and _is_type(instance, "number"):
        if instance < schema["minimum"]:
            errors.append(
                f"{path}: {instance} below minimum {schema['minimum']}"
            )

    if isinstance(instance, dict):
        properties = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in properties:
                errors.extend(validate(value, properties[key], f"{path}.{key}"))
            elif additional is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional, f"{path}.{key}"))

    if isinstance(instance, list) and isinstance(schema.get("items"), dict):
        for i, element in enumerate(instance):
            errors.extend(validate(element, schema["items"], f"{path}[{i}]"))

    return errors


#: Prefix of the per-provenance serve counters (``serve.served.<tag>``).
_SERVED_PREFIX = "serve.served."


def serve_consistency(document: Any) -> List[str]:
    """Cross-counter invariants for serving-layer telemetry.

    Exports that contain serve metrics (``repro serve-bench
    --export-dir``) are drained before export, so the counters must
    balance exactly:

    * every request is served exactly once, from exactly one source;
    * every request does exactly one tiered-cache lookup, which either
      hits one tier or misses;
    * every model-layer request was either admitted (full model) or
      degraded (URL-only fast path).

    Campaign exports carry no serve counters and skip these checks.
    """
    counters = document.get("metrics", {}).get("counters", {})
    if "serve.requests" not in counters:
        return []
    errors: List[str] = []
    requests = counters["serve.requests"]

    served = sum(
        value for key, value in counters.items()
        if key.startswith(_SERVED_PREFIX)
    )
    if served != requests:
        errors.append(
            f"serve: {requests} requests but {served} served verdicts "
            f"(every request must be served exactly once)"
        )

    lookups = sum(
        counters.get(f"serve.cache.hit.{tier}", 0)
        for tier in ("exact", "domain", "negative")
    ) + counters.get("serve.cache.miss", 0)
    if lookups != requests:
        errors.append(
            f"serve: {requests} requests but {lookups} cache "
            f"hits+misses (every request does one tiered lookup)"
        )

    model_layer = counters.get(f"{_SERVED_PREFIX}model", 0) + counters.get(
        f"{_SERVED_PREFIX}model_degraded", 0
    )
    admissions = counters.get("serve.admission.admitted", 0) + counters.get(
        "serve.admission.degraded", 0
    )
    # check() resolves model verdicts synchronously without an admission
    # decision, so admissions can undercount — never overcount.
    if admissions > model_layer:
        errors.append(
            f"serve: {admissions} admission decisions exceed "
            f"{model_layer} model-layer verdicts"
        )
    return errors


def cache_consistency(document: Any) -> List[str]:
    """Cross-counter invariants for the feature-cache / batch counters.

    The snapshot-keyed caches (``features.cache.*``, ``preprocess.cache.*``)
    and the batched classify path (``classify.batch.*``) appear in both
    campaign and serve exports. Their invariants hold at any point in a
    run, not only after a drain:

    * an entry must be inserted (a miss) before it can be evicted;
    * every counted batch holds at least one row.
    """
    counters = document.get("metrics", {}).get("counters", {})
    errors: List[str] = []
    for cache in ("features.cache", "preprocess.cache"):
        evicted = counters.get(f"{cache}.evicted", 0)
        misses = counters.get(f"{cache}.miss", 0)
        if evicted > misses:
            errors.append(
                f"cache: {cache}.evicted={evicted} exceeds "
                f"{cache}.miss={misses} (evictions require prior inserts)"
            )
    calls = counters.get("classify.batch.calls", 0)
    rows = counters.get("classify.batch.rows", 0)
    if calls > rows:
        errors.append(
            f"cache: classify.batch.calls={calls} exceeds "
            f"classify.batch.rows={rows} (batches cannot be empty)"
        )
    return errors


def main(argv: List[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    document_path = Path(argv[1])
    schema_path = Path(argv[2]) if len(argv) == 3 else DEFAULT_SCHEMA
    document = json.loads(document_path.read_text(encoding="utf-8"))
    schema = json.loads(schema_path.read_text(encoding="utf-8"))

    errors = (
        validate(document, schema)
        + serve_consistency(document)
        + cache_consistency(document)
    )
    if errors:
        for error in errors:
            print(f"INVALID {document_path}: {error}")
        return 1
    counters = len(document.get("metrics", {}).get("counters", {}))
    histograms = len(document.get("metrics", {}).get("histograms", {}))
    emitted = document.get("events", {}).get("emitted", 0)
    print(
        f"OK {document_path}: schema={document.get('schema')} "
        f"mode={document.get('mode')} counters={counters} "
        f"histograms={histograms} events={emitted}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
