"""Calibration harness: compare blocklist behaviour against Table 3 targets.

Run after changing DEFAULT_BEHAVIORS or the suspicion weights:
    python scripts/calibrate_blocklists.py
"""
import numpy as np
from repro.simnet import Web, Browser
from repro.sitegen import LegitimateSiteGenerator, PhishingSiteGenerator, PhishingKitGenerator
from repro.ecosystem import IntelService, default_blocklists
from repro.config import minutes_to_hhmm

rng = np.random.default_rng(3)
web = Web(); browser = Browser(web)
leg, ph, kit = LegitimateSiteGenerator(), PhishingSiteGenerator(), PhishingKitGenerator()
svc = IntelService(web, browser)
bls = default_blocklists(svc, seed=1)

fwb_sites = []
for name, prov in web.fwb_providers.items():
    n = max(2, prov.service.attacker_weight // 60)
    for _ in range(n):
        fwb_sites.append(ph.create_site(prov, now=10, rng=rng))
self_sites = [kit.create_site(web.self_hosting, now=10, rng=rng) for _ in range(len(fwb_sites))]

WEEK = 7*24*60
targets = {('FWB','gsb'):(18.4,'06:01'),('FWB','phishtank'):(4.1,'07:11'),('FWB','openphish'):(11.7,'13:20'),('FWB','ecrimex'):(32.9,'08:54'),
           ('SELF','gsb'):(74.2,'00:51'),('SELF','phishtank'):(17.4,'02:30'),('SELF','openphish'):(30.5,'02:21'),('SELF','ecrimex'):(47.9,'04:26')}
for group, sites in [('FWB', fwb_sites), ('SELF', self_sites)]:
    for name, bl in bls.items():
        for s in sites:
            bl.observe(s.root_url, now=60)
        times = [bl.listing_time(s.root_url) for s in sites]
        listed = [t-60 for t in times if t is not None and t-60 <= WEEK]
        cov = len(listed)/len(sites)
        med = minutes_to_hhmm(np.median(listed)) if listed else 'n/a'
        tc, tm = targets[(group, name)]
        print(f'{group} {name:10s} coverage {cov*100:5.1f}% (target {tc:5.1f})  median {med} (target {tm})')
