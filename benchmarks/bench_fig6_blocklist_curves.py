"""Figure 6: blocklist coverage over time, FWB vs self-hosted.

Paper reference points: GSB reaches ~60% of self-hosted URLs within 3 h vs
~11% of FWB URLs; ~83% vs ~31% at 24 h. eCrimeX is near-parity at 3 h
(11% vs 8%) with the gap widening by 24 h (38% vs 13%).
"""

from conftest import emit

from repro.analysis import build_fig6
from repro.analysis.report import render_figure


def test_fig6_blocklist_curves(benchmark, bench_campaign):
    _world, result = bench_campaign
    figure = benchmark(build_fig6, result.timelines)
    emit("Figure 6 — blocklist coverage over time", render_figure(figure))

    hours = figure.x_values

    def at(series, hour):
        return figure.series[series][hours.index(hour)]

    # GSB: enormous early gap between self-hosted and FWB.
    assert at("gsb_self_hosted", 3) > 3 * max(at("gsb_fwb", 3), 0.01)
    assert at("gsb_self_hosted", 24) > at("gsb_fwb", 24) + 0.3

    # eCrimeX: the most balanced early on; gap grows by 24 h.
    early_gap = at("ecrimex_self_hosted", 3) - at("ecrimex_fwb", 3)
    late_gap = at("ecrimex_self_hosted", 24) - at("ecrimex_fwb", 24)
    assert late_gap >= early_gap - 0.05

    # All curves are monotone non-decreasing.
    for name, series in figure.series.items():
        assert series == sorted(series), name
