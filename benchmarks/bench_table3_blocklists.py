"""Table 3: blocklist / platform / host performance, FWB vs self-hosted.

Paper (coverage, median response):
  PhishTank  FWB  4.1% 07:11   self 17.4% 02:30
  OpenPhish  FWB 11.7% 13:20   self 30.5% 02:21
  GSB        FWB 18.4% 06:01   self 74.2% 00:51
  eCrimeX    FWB 32.9% 08:54   self 47.9% 04:26
  Platform   FWB 23.1% 10:25   self 50.9% 03:41
  Host       FWB 29.4% 09:43   self 77.5% 03:47
"""

from conftest import emit

from repro.analysis import build_table3
from repro.analysis.report import render_table3


def test_table3_blocklists(benchmark, bench_campaign):
    _world, result = bench_campaign
    rows = benchmark(build_table3, result.timelines)
    emit("Table 3 — anti-phishing entity performance", render_table3(rows))

    stats = {row.entity: row for row in rows}

    # Every entity covers self-hosted phishing far better than FWB phishing.
    for entity in ("phishtank", "openphish", "gsb", "ecrimex", "platform", "domain"):
        row = stats[entity]
        assert row.self_hosted.coverage > row.fwb.coverage, entity
        # Response-time ordering holds for every entity except hosting-
        # domain removal: there the paper's own tables disagree (Table 3
        # reports a 9:43 FWB median, but Table 4's per-FWB medians —
        # Weebly 1:39, 000webhost 0:45 on ~41% of all URLs — imply a fast
        # weighted median). Our emergent result follows Table 4.
        if entity == "domain":
            continue
        if row.fwb.median_minutes and row.self_hosted.median_minutes:
            assert row.fwb.median_minutes > row.self_hosted.median_minutes, entity

    # Blocklist ordering on FWB attacks: PhishTank worst, eCrimeX broadest.
    assert stats["phishtank"].fwb.coverage < stats["openphish"].fwb.coverage
    assert stats["gsb"].fwb.coverage < stats["ecrimex"].fwb.coverage

    # Rough magnitudes (generous bands around the paper's percentages).
    assert stats["phishtank"].fwb.coverage < 0.10
    assert 0.08 < stats["gsb"].fwb.coverage < 0.30
    assert 0.60 < stats["gsb"].self_hosted.coverage < 0.90
    assert 0.15 < stats["ecrimex"].fwb.coverage < 0.45
    assert 0.15 < stats["platform"].fwb.coverage < 0.40
    assert 0.60 < stats["domain"].self_hosted.coverage < 0.95
