"""Ablation: which FWB properties create the detection gap?

DESIGN.md calls out that ecosystem behaviour is *emergent*: detectors trust
domain age, certificate provenance, and CT visibility — exactly what FWB
hosting subverts. This ablation removes those trust signals from the
canonical suspicion weighting and measures how much blocklist-side
detectability of FWB phishing recovers, attributing the gap to mechanism.
"""

import numpy as np
from conftest import emit

from repro.ecosystem.intel import DEFAULT_WEIGHTS, gather_intel, suspicion_score
from repro.simnet import Browser, Web
from repro.sitegen import PhishingSiteGenerator


def _population_scores(weights, n=150, seed=3):
    rng = np.random.default_rng(seed)
    web = Web()
    browser = Browser(web)
    generator = PhishingSiteGenerator()
    providers = list(web.fwb_providers.values())
    probs = np.asarray([p.service.attacker_weight for p in providers], float)
    probs /= probs.sum()
    scores = []
    for _ in range(n):
        provider = providers[int(rng.choice(len(providers), p=probs))]
        site = generator.create_site(provider, now=0, rng=rng)
        intel = gather_intel(web, browser, site.root_url, now=60)
        scores.append(suspicion_score(intel, weights))
    return np.asarray(scores)


def test_ablation_inherited_trust_signals(benchmark):
    """Zeroing the inherited-trust weights restores FWB detectability."""
    ablated = dict(DEFAULT_WEIGHTS)
    ablated["old_domain_trust"] = 0.0
    ablated["ov_ev_cert_trust"] = 0.0

    baseline = benchmark.pedantic(
        _population_scores, args=(None,), rounds=1, iterations=1
    )
    without_trust = _population_scores(ablated)

    body = (
        f"median FWB suspicion, full model:        {np.median(baseline):.3f}\n"
        f"median FWB suspicion, trust ablated:     {np.median(without_trust):.3f}\n"
        f"suspicion uplift from removing trust:    "
        f"{np.median(without_trust) - np.median(baseline):+.3f}"
    )
    emit("Ablation — inherited trust signals (domain age, OV/EV cert)", body)

    # The trust signals FWB sites inherit suppress suspicion materially.
    assert np.median(without_trust) > np.median(baseline) + 0.15


def test_ablation_discovery_channels(benchmark):
    """CT-log and search-index crawlers find self-hosted attacks but are
    structurally blind to FWB attacks (§3's discovery argument)."""
    import numpy as np

    from repro.ecosystem import measure_discovery
    from repro.simnet import Web
    from repro.sitegen import PhishingKitGenerator

    def run():
        rng = np.random.default_rng(9)
        web = Web()
        generator = PhishingSiteGenerator()
        kits = PhishingKitGenerator(https_rate=1.0)
        providers = list(web.fwb_providers.values())
        fwb_hosts = [
            generator.create_site(providers[i % 17], now=5, rng=rng).host
            for i in range(60)
        ]
        self_hosts = [
            kits.create_site(web.self_hosting, now=5, rng=rng).host
            for _ in range(60)
        ]
        return measure_discovery(web, fwb_hosts, self_hosts, now=100)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — proactive discovery channels (CT log + search index)",
        f"self-hosted attacks discovered: "
        f"{report.self_hosted_discovery_rate * 100:.1f}%\n"
        f"FWB attacks discovered:        "
        f"{report.fwb_discovery_rate * 100:.1f}%",
    )
    assert report.self_hosted_discovery_rate > 0.4
    assert report.fwb_discovery_rate == 0.0


def test_ablation_scrutiny_only_partially_compensates(benchmark):
    """Raising per-FWB scrutiny cannot close the gap the way signal
    restoration does: evasive variants stay invisible."""
    scores = benchmark.pedantic(
        _population_scores, args=(None,), rounds=1, iterations=1
    )
    # Evasive-style pages (no credential form -> low score) persist as a
    # hard-to-detect mass in the FWB population.
    low_mass = float(np.mean(scores < 0.15))
    emit(
        "Ablation — undetectable mass",
        f"share of FWB phishing with suspicion < 0.15: {low_mass * 100:.1f}%",
    )
    assert low_mass > 0.10
