"""Figure 1: FWB phishing on Twitter/Facebook, Jan 2020 - Aug 2022.

Paper claims reproduced: (a) total volumes 16.3K Twitter / 8.9K Facebook;
(b) quarter-over-quarter growth; (c) attackers shifting onto newer FWBs.
"""

from conftest import emit

from repro.analysis import build_fig1
from repro.analysis.report import render_figure
from repro.sim import HistoricalPipeline, HistoricalScenario


def test_fig1_historical_trend(benchmark):
    figure = benchmark(build_fig1, HistoricalScenario(seed=11))
    emit("Figure 1 — historical FWB phishing volume", render_figure(figure, 0))

    totals = [t + f for t, f in zip(figure.series["twitter"], figure.series["facebook"])]
    assert sum(figure.series["twitter"]) == 16300
    assert sum(figure.series["facebook"]) == 8900
    # Rising trend: the last year dwarfs the first.
    assert sum(totals[-4:]) > 2.5 * sum(totals[:4])


def test_fig1_service_adoption_shift(benchmark):
    scenario = HistoricalScenario(seed=11)
    quarters = benchmark(scenario.generate)
    first = set(quarters.dominant_services(0))
    last = set(quarters.dominant_services(len(quarters.labels) - 1))
    emit(
        "Figure 1 — services covering 80% of attacks",
        f"first quarter: {sorted(first)}\nlast quarter:  {sorted(last)}",
    )
    assert last - first, "newer services must enter the dominant set"


def test_sec2_d1_pipeline(benchmark):
    """The bottom-up §2 pipeline: SLD filter + VirusTotal >= 2 labelling.

    Reproduced claims: D1 is high-purity phishing (the coders later confirm
    93.1% of a sample), Twitter contributes ~2x Facebook's volume, and the
    quarterly counts rise.
    """
    pipeline = HistoricalPipeline(seed=23)
    dataset = benchmark.pedantic(pipeline.run, kwargs=dict(scale=0.02),
                                 rounds=1, iterations=1)
    phishing = sum(
        1 for s in dataset.fwb_phishing
        if (site := pipeline.web.site_for(s.url)) is not None
        and site.metadata.get("is_phishing")
    )
    purity = phishing / max(len(dataset.fwb_phishing), 1)
    counts = dataset.quarterly_counts()
    early = sum(v for (q, _p), v in counts.items() if q <= 2)
    late = sum(v for (q, _p), v in counts.items() if q >= 8)
    emit(
        "Section 2 — D1 pipeline",
        f"FWB phishing URLs in D1: {len(dataset.fwb_phishing)} "
        f"(Twitter {dataset.n_twitter} / Facebook {dataset.n_facebook})\n"
        f"label purity:            {purity * 100:.1f}% (coders later confirm 93.1%)\n"
        f"dynamic-DNS set aside:   {len(dataset.dyndns_phishing)}\n"
        f"dropped by SLD filter:   {dataset.dropped_no_sld}\n"
        f"quarterly rise:          {early} (2020H1) -> {late} (2022)",
    )
    assert purity > 0.8
    assert dataset.n_twitter > dataset.n_facebook
    assert late > 2 * max(early, 1)
    assert dataset.dyndns_phishing and dataset.dropped_no_sld
