"""Extension experiment: attacker migration toward poorly-policed FWBs.

Implements the paper's closing prediction (§5.1: "The lack of blocklist
coverage for a particular FWB might entice attackers to more frequently
abuse that service"; §5.3 makes the equivalent takedown argument). An
adaptive attacker re-weights its FWB choice by observed attack survival;
after a few feedback rounds, share migrates off the responsive services
(Weebly, 000webhost, Wix) and onto the laggards.
"""

from conftest import emit

from repro.config import SimulationConfig
from repro.sim import CampaignWorld, run_adaptation_experiment

RESPONSIVE = ("weebly", "000webhost", "wix")
LAGGARDS = ("google_sites", "sharepoint", "wordpress", "firebase", "godaddysites")


def test_adaptive_attacker_migration(benchmark):
    world = CampaignWorld(
        SimulationConfig(seed=41, duration_days=1, target_fwb_phishing=50),
        train_samples_per_class=50,
    )
    shares = benchmark.pedantic(
        run_adaptation_experiment,
        args=(world,),
        kwargs=dict(n_rounds=5, launches_per_round=200),
        rounds=1,
        iterations=1,
    )
    first, last = shares[0], shares[-1]
    lines = ["service        initial -> final share"]
    for name in sorted(first, key=lambda n: -first[n])[:10]:
        marker = (
            " (responsive)" if name in RESPONSIVE
            else " (laggard)" if name in LAGGARDS else ""
        )
        lines.append(f"{name:14s} {first[name]:.3f} -> {last[name]:.3f}{marker}")
    responsive_before = sum(first[n] for n in RESPONSIVE)
    responsive_after = sum(last[n] for n in RESPONSIVE)
    laggard_before = sum(first[n] for n in LAGGARDS)
    laggard_after = sum(last[n] for n in LAGGARDS)
    lines.append("")
    lines.append(f"responsive trio mass: {responsive_before:.2f} -> {responsive_after:.2f}")
    lines.append(f"laggard-five mass:    {laggard_before:.2f} -> {laggard_after:.2f}")
    emit("Extension — adaptive attacker migration", "\n".join(lines))

    assert responsive_after < responsive_before * 0.6
    assert laggard_after > laggard_before
