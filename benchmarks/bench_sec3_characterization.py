"""§3 characterization: manual coding and FWB evasion statistics.

Paper values: 4,656/5,000 confirmed (93.1%); κ = 0.78; 89% on .com FWBs;
median domain age 13.7 years vs 71 days; 4.1% Google-indexed; 44.7% with a
noindex directive.
"""

from conftest import emit

from repro.analysis import characterize


def test_sec3_characterization(benchmark):
    report = benchmark.pedantic(
        characterize, kwargs=dict(n_sample=1000, seed=13), rounds=1, iterations=1
    )
    body = "\n".join(
        [
            f"sample size                    {report.n_sample}",
            f"confirmed phishing             {report.n_confirmed} "
            f"({report.confirmation_rate * 100:.1f}%; paper 93.1%)",
            f"Cohen's kappa                  {report.kappa:.2f} (paper 0.78)",
            f".com-FWB share                 {report.com_share * 100:.1f}% (paper ~89%)",
            f"median FWB domain age          {report.median_fwb_age_years:.1f} y (paper 13.7 y)",
            f"median self-hosted domain age  {report.median_self_hosted_age_days:.0f} d (paper 71 d)",
            f"search-indexed                 {report.indexed_rate * 100:.1f}% (paper 4.1%)",
            f"noindex directive              {report.noindex_rate * 100:.1f}% (paper 44.7%)",
        ]
    )
    emit("Section 3 — characterization of FWB phishing", body)

    assert abs(report.confirmation_rate - 0.931) < 0.02
    assert 0.55 < report.kappa < 0.95
    assert 0.83 < report.com_share < 0.96
    assert report.median_fwb_age_years > 10
    assert report.median_self_hosted_age_days < 250
    assert report.indexed_rate < 0.10
    assert 0.35 < report.noindex_rate < 0.55
