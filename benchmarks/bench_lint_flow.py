"""Lint flow-analysis benchmark: warm-cache speed and cold/warm parity.

Two properties of the interprocedural pass are load-bearing enough to
assert in CI rather than eyeball:

* a **warm** whole-tree analysis (summary cache hit for every file) must
  stay under 2 s, or the linter stops being a pre-commit tool;
* the warm report must be **byte-identical** to the cold one — the cache
  is keyed on content hashes and summaries are a pure function of file
  content, so any divergence is a soundness bug, not a staleness bug.
"""

from __future__ import annotations

import time
from pathlib import Path

from conftest import emit

from repro.lint.flow.cache import SummaryCache
from repro.lint.flow.engine import FlowEngine

REPO_ROOT = Path(__file__).resolve().parent.parent

#: CI budget for a warm whole-tree flow analysis, in seconds.
WARM_BUDGET_S = 2.0


def test_warm_flow_analysis_under_budget(tmp_path):
    cache_path = tmp_path / "flow-cache.json"

    cold_engine = FlowEngine(REPO_ROOT, cache=SummaryCache(cache_path))
    cold_start = time.perf_counter()
    cold_report = cold_engine.run()
    cold_s = time.perf_counter() - cold_start
    n_files = len(cold_engine.summaries)
    assert n_files > 100, "flow engine failed to scan the src tree"
    assert cold_engine.cache.hits == 0

    warm_engine = FlowEngine(REPO_ROOT, cache=SummaryCache(cache_path))
    warm_start = time.perf_counter()
    warm_report = warm_engine.run()
    warm_s = time.perf_counter() - warm_start
    assert warm_engine.cache.misses == 0, "warm run unexpectedly re-parsed files"

    assert warm_report.render_json() == cold_report.render_json(), (
        "warm-cache findings differ from a cold run"
    )
    assert warm_s < WARM_BUDGET_S, (
        f"warm whole-tree flow analysis took {warm_s:.2f}s "
        f"(budget {WARM_BUDGET_S:.1f}s) over {n_files} files"
    )

    emit(
        "Lint flow analysis (whole tree)",
        f"files analyzed     {n_files}\n"
        f"cold run           {cold_s * 1e3:8.1f} ms\n"
        f"warm run           {warm_s * 1e3:8.1f} ms\n"
        f"speedup            {cold_s / warm_s:8.1f}x\n"
        f"findings           {len(cold_report.findings)} "
        f"({len(cold_report.suppressed)} suppressed)",
    )
