"""Ablation: the two FWB-specific classifier features (§4.2).

The paper replaces (https, multi-TLD) with (obfuscated FWB banner,
noindex) and reports 0.88 → 0.97 accuracy. This bench isolates that
change: the *same* stacking architecture trained on the base vs augmented
feature sets, plus each FWB feature alone.
"""

import numpy as np
from conftest import emit

from repro.core.features import BASE_FEATURE_NAMES, FWB_FEATURE_NAMES
from repro.ml import StackModel, classification_summary, train_test_split

_BASE_MINUS = tuple(
    n for n in BASE_FEATURE_NAMES if n not in ("has_https", "n_tld_tokens")
)

FEATURE_SETS = {
    "base (original 20)": BASE_FEATURE_NAMES,
    "base minus https/TLD (18)": _BASE_MINUS,
    "plus banner-obfuscation only (19)": _BASE_MINUS + ("obfuscated_fwb_banner",),
    "plus noindex only (19)": _BASE_MINUS + ("has_noindex",),
    "augmented (ours, 20)": FWB_FEATURE_NAMES,
}


def _evaluate(dataset, names, seed=7):
    X, y = dataset.split_arrays(names)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, random_state=seed)
    model = StackModel(n_estimators=25, random_state=seed)
    model.fit(Xtr, ytr)
    return classification_summary(yte, model.predict(Xte))


def test_ablation_fwb_features(benchmark, bench_ground_truth):
    results = benchmark.pedantic(
        lambda: {
            label: _evaluate(bench_ground_truth, names)
            for label, names in FEATURE_SETS.items()
        },
        rounds=1,
        iterations=1,
    )
    body = "\n".join(
        f"{label:36s} acc {summary.accuracy:.3f}  f1 {summary.f1:.3f}"
        for label, summary in results.items()
    )
    emit("Ablation — FWB-specific classifier features", body)

    base = results["base (original 20)"].accuracy
    ours = results["augmented (ours, 20)"].accuracy
    banner_only = results["plus banner-obfuscation only (19)"].accuracy
    noindex_only = results["plus noindex only (19)"].accuracy

    # The full augmentation delivers the paper's gain ...
    assert ours > base + 0.02
    # ... and beats every single-feature intermediate: the two FWB features
    # are complementary (each resolves a different cloaked subpopulation).
    stripped = results["base minus https/TLD (18)"].accuracy
    assert ours >= banner_only
    assert ours >= noindex_only
    # Individually each feature is at worst split-noise-neutral (one test
    # sample is ~0.5 accuracy points at this corpus size).
    assert banner_only >= stripped - 0.02
    assert noindex_only >= stripped - 0.02
    # Dropping https/multi-TLD costs nothing on FWB data (both uninformative).
    assert stripped >= base - 0.02
