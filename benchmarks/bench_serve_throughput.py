"""Serving-layer throughput bench: batched inference vs single-URL scoring.

The serving subsystem exists because per-navigation ``classify_page`` calls
cannot keep up with extension-scale traffic (millions of navigations per
simulated day). This bench runs the full serve pipeline — Zipf+diurnal
workload, tiered cache, micro-batched inference, admission control — under
wall-clock instrumentation and dumps ``BENCH_serve.json`` at the repo root.

Run directly (no pytest-benchmark required)::

    PYTHONPATH=src pytest benchmarks/bench_serve_throughput.py -s
"""

import json
from pathlib import Path

from conftest import emit

from repro.serve.bench import run_serve_bench

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Larger than the CI smoke run: a two-hour window at 90 req/min over a
#: 160-site catalogue, enough traffic for every cache tier to see hits.
BENCH_PARAMETERS = dict(
    seed=20231024,
    n_sites_per_class=80,
    n_minutes=120,
    requests_per_minute=90.0,
    baseline_requests=200,
    mode="wall",
)


def test_batched_serving_beats_single_url_scoring():
    payload = run_serve_bench(**BENCH_PARAMETERS)

    served = payload["served"]
    baseline = payload["baseline"]
    speedup = payload["speedup_vs_single_url"]
    hit_rate = payload["cache"]["hit_rate"]

    # Acceptance bar: batched+cached serving is at least 3x the naive
    # one-process-one-classify loop on the same hardware.
    assert speedup >= 3.0, f"serving speedup {speedup:.1f}x below 3x bar"
    assert served["n_requests"] > baseline["n_requests"]
    assert 0.0 <= payload["admission"]["degraded_fraction"] <= 1.0

    out = REPO_ROOT / "BENCH_serve.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")

    emit(
        "Throughput — verdict serving",
        "\n".join(
            [
                f"served {served['n_requests']} requests at "
                f"{served['requests_per_second']:.0f} req/s "
                f"({speedup:.1f}x single-URL baseline of "
                f"{baseline['requests_per_second']:.0f} req/s)",
                f"cache hit rates: exact={hit_rate['exact']:.2f} "
                f"domain={hit_rate['domain']:.2f} "
                f"negative={hit_rate['negative']:.2f}",
                f"degraded fraction: "
                f"{payload['admission']['degraded_fraction']:.3f}",
                f"wrote {out.name}",
            ]
        ),
    )
