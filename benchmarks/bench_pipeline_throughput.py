"""Framework throughput micro-benchmarks.

The paper's model-selection argument (§4.2) is about *runtime efficiency*
at stream scale: "a slower classification model can exponentially hamper
the framework's overall performance." These benches measure the per-URL
cost of the production pipeline stages so regressions in the hot path are
caught: snapshot+feature extraction, classifier inference, and the full
streaming step.
"""

import numpy as np
import pytest
from conftest import emit

from repro.config import SimulationConfig
from repro.core.preprocess import Preprocessor
from repro.obs import NULL_INSTRUMENTATION
from repro.sim import CampaignWorld
from repro.simnet import Browser


@pytest.fixture(scope="module")
def pipeline_world(bench_campaign):
    world, _result = bench_campaign
    rng = np.random.default_rng(123)
    provider = world.web.fwb_providers["weebly"]
    site = world.attacker.phishing_generator.create_site(
        provider, now=10 ** 7, rng=rng
    )
    return world, site


def test_snapshot_and_feature_extraction_rate(benchmark, pipeline_world):
    world, site = pipeline_world
    preprocessor = Preprocessor(world.web, Browser(world.web))

    page = benchmark(preprocessor.process, site.root_url, 10 ** 7 + 5, False)
    assert page is not None
    emit(
        "Throughput — preprocessing",
        f"snapshot + 20-feature extraction: "
        f"{1.0 / benchmark.stats['mean']:.0f} URLs/s",
    )


def test_classifier_inference_rate(benchmark, pipeline_world):
    world, site = pipeline_world
    preprocessor = Preprocessor(world.web, Browser(world.web))
    page = preprocessor.process(site.root_url, 10 ** 7 + 5, keep=False)

    prediction = benchmark(world.classifier.classify_page, page)
    assert prediction.label in (0, 1)
    emit(
        "Throughput — classification",
        f"classifier inference: {1.0 / benchmark.stats['mean']:.0f} URLs/s",
    )


def test_campaign_run_null_instrumentation(benchmark):
    """End-to-end campaign with observability opted out entirely.

    The null Instrumentation collapses every metric/span/event hook to a
    shared no-op singleton; this bench pins the uninstrumented pipeline's
    runtime so instrumentation overhead regressions are caught.
    """
    config = SimulationConfig(seed=11, duration_days=1, target_fwb_phishing=120)

    def setup():
        world = CampaignWorld(
            config,
            train_samples_per_class=80,
            instrumentation=NULL_INSTRUMENTATION,
        )
        world.train_classifier()
        return (world,), {}

    def run(world):
        return world.run()

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert result.timelines
    emit(
        "Throughput — null-instrumentation campaign",
        f"1-day campaign resolved {len(result.timelines)} timelines in "
        f"{benchmark.stats['mean']:.2f}s (instrumentation opted out)",
    )


def test_stream_poll_cost(benchmark, bench_campaign):
    """An idle 10-minute poll over the whole campaign's post history."""
    world, _result = bench_campaign

    def poll():
        # Reset the cursor so each round scans the same window.
        world.streaming._cursor = 0
        world.streaming._seen_urls.clear()
        return world.streaming.poll(now=world.config.duration_minutes)

    observations = benchmark.pedantic(poll, rounds=3, iterations=1)
    emit(
        "Throughput — streaming poll",
        f"full-history poll returned {len(observations)} observations",
    )
    assert observations
