"""Figure 9: platform post-removal curves, FWB vs self-hosted.

Paper reference points (3 h): Twitter removes ~32% of self-hosted posts vs
~10% of FWB posts; Facebook ~47% vs ~6%. By 16 h Twitter passes 70% of
self-hosted while FWB lingers near 21%.
"""

from conftest import emit

from repro.analysis import build_fig9
from repro.analysis.report import render_figure


def test_fig9_platform_curves(benchmark, bench_campaign):
    _world, result = bench_campaign
    figure = benchmark(build_fig9, result.timelines)
    emit("Figure 9 — platform removal over time", render_figure(figure))

    hours = figure.x_values

    def at(series, hour):
        return figure.series[series][hours.index(hour)]

    # Both platforms act much faster on self-hosted phishing.
    for platform in ("twitter", "facebook"):
        assert at(f"{platform}_self_hosted", 3) > at(f"{platform}_fwb", 3) + 0.15
        assert at(f"{platform}_self_hosted", 16) > at(f"{platform}_fwb", 16) + 0.25

    # FWB posts persist: under ~40% removed even after a week.
    assert at("twitter_fwb", 168) < 0.45
    assert at("facebook_fwb", 168) < 0.45

    # Self-hosted posts largely gone within the week.
    assert at("twitter_self_hosted", 168) > 0.5
