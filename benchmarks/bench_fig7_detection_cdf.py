"""Figure 7: CDF of anti-phishing engine detections after one week.

Paper: FWB attacks settle at a median of ~4 VirusTotal detections after a
week; self-hosted attacks at ~9 — FWB URLs accrue systematically fewer
detections regardless of the platform they were shared on.
"""

import numpy as np
from conftest import emit

from repro.analysis import build_fig7
from repro.analysis.report import render_figure


def test_fig7_detection_cdf(benchmark, bench_campaign):
    _world, result = bench_campaign
    figure = benchmark(build_fig7, result.timelines)
    emit("Figure 7 — cumulative engine-detection distribution", render_figure(figure))

    fwb_final = [t.vt_final() for t in result.fwb_timelines]
    self_final = [t.vt_final() for t in result.self_hosted_timelines]
    fwb_median = float(np.median(fwb_final))
    self_median = float(np.median(self_final))
    emit(
        "Figure 7 — medians",
        f"FWB median detections:        {fwb_median:.0f} (paper ~4)\n"
        f"self-hosted median detections: {self_median:.0f} (paper ~9)",
    )

    # The headline gap: self-hosted median well above FWB median.
    assert self_median >= fwb_median + 3
    assert 1 <= fwb_median <= 8
    assert 6 <= self_median <= 16

    # Platform-independence: both platforms' FWB curves track each other.
    mid = figure.x_values.index(6)
    twitter = figure.series["fwb_twitter"][mid]
    facebook = figure.series["fwb_facebook"][mid]
    assert abs(twitter - facebook) < 0.25
