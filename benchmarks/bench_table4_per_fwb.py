"""Table 4: per-FWB coverage and response of every countermeasure.

Paper claims reproduced as shape:
* Weebly / 000webhost / Wix — the most-abused, most-scrutinised services —
  remove reported sites at the highest rates (~58-65%) and fastest;
* Blogspot, Google Sites, Sharepoint, WordPress, GoDaddy remove well under
  15% despite their abuse volume;
* blocklist coverage collapses on the evasive-heavy services
  (Google Sites / Sharepoint / Google Forms).
"""

from conftest import emit

from repro.analysis import build_table4
from repro.analysis.report import render_table4


def test_table4_per_fwb(benchmark, bench_campaign):
    _world, result = bench_campaign
    rows = benchmark(build_table4, result.timelines)
    emit("Table 4 — per-FWB countermeasure performance", render_table4(rows))

    table = {row.fwb: row for row in rows}

    # The heavyweights dominate volume, as in the paper's URL counts.
    assert rows[0].fwb in ("weebly", "000webhost")

    # Responsive services remove most reported sites; silent ones barely any.
    for responsive in ("weebly", "000webhost", "wix"):
        assert table[responsive].entities["domain"].coverage > 0.35, responsive
    for laggard in ("google_sites", "wordpress", "sharepoint"):
        if laggard in table:
            assert table[laggard].entities["domain"].coverage < 0.20, laggard

    # Blocklists see far less of the evasive-heavy services than of Weebly.
    weebly_gsb = table["weebly"].entities["gsb"].coverage
    for evasive in ("google_sites", "sharepoint"):
        if evasive in table and table[evasive].n_urls >= 10:
            assert table[evasive].entities["gsb"].coverage < weebly_gsb

    # All 17 services should appear at campaign scale.
    assert len(rows) >= 15
