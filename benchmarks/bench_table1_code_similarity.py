"""Table 1: code similarity between FWB phishing and benign websites.

Paper medians: Weebly 79.4%, 000webhost 68.1%, Blogspot 63.8%, Google Sites
72.4%, Wix 63.7%, Github.io 37.4%. The reproduction target is the *shape*:
template-heavy builders yield high benign↔phishing similarity; raw-HTML
hosting (github.io) sits far below.
"""

from conftest import emit

from repro.analysis import build_table1
from repro.analysis.report import render_table1


def test_table1_code_similarity(benchmark):
    rows = benchmark.pedantic(
        build_table1,
        kwargs=dict(seed=21, sites_per_class=8, max_pairs=30),
        rounds=1,
        iterations=1,
    )
    emit("Table 1 — benign vs phishing code similarity per FWB", render_table1(rows))

    values = {row.fwb: row.median_similarity for row in rows}
    # Template-built services all sit well above raw hosting.
    for templated in ("weebly", "000webhost", "blogspot", "google_sites", "wix"):
        assert values[templated] > values["github_io"] + 0.08
    assert values["weebly"] > values["github_io"] + 0.15
    # Weebly tops the templated group, as in the paper.
    assert values["weebly"] >= max(
        values["000webhost"], values["blogspot"], values["wix"]
    ) - 0.05
    # Everything is a proper similarity.
    assert all(0.0 <= v <= 1.0 for v in values.values())
