"""Classifier hot-path bench: flattened batch inference vs per-row walk.

The performance pass compiled every tree ensemble into a
:class:`~repro.ml.flat.FlatForest` (parallel numpy arrays, vectorized
level-order descent) and batched the framework's per-tick classification
into one matrix. This bench pins both claims at the repo root in
``BENCH_classify.json``:

* **speedup** — scoring a 4k-row feature matrix through the flat path must
  be ≥ 5x faster than the per-row reference walk it replaced (one
  ``predict_proba`` call per row, the pre-batching hot path);
* **equivalence** — the two paths must agree **bit-for-bit**
  (``np.array_equal``, not ``allclose``); a flat compiler that drifts by
  one ULP is a wrong compiler, not a fast one.

Run directly (no pytest-benchmark required)::

    PYTHONPATH=src:benchmarks pytest benchmarks/bench_classify_throughput.py -s
"""

import json
from pathlib import Path

import numpy as np
from conftest import emit

from repro.config import SeedBank
from repro.ml import RandomForestClassifier, StackModel
from repro.obs.tracing import wall_clock
from repro.sim import build_ground_truth

REPO_ROOT = Path(__file__).resolve().parents[1]

BENCH_SCHEMA = "repro.ml/bench_classify.v1"
BENCH_SEED = 20231024
N_ROWS = 4096
MIN_SPEEDUP = 5.0

#: The two production models: the paper's StackModel detector and the
#: light Random Forest the campaign simulations swap in (§4 permits).
MODELS = (
    ("stack", lambda seed: StackModel(n_estimators=30, n_splits=3, random_state=seed)),
    ("rf", lambda seed: RandomForestClassifier(
        n_estimators=40, max_depth=10, random_state=seed
    )),
)


def _query_matrix(X: np.ndarray, seeds: SeedBank) -> np.ndarray:
    """A 4k-row matrix resampled from the ground-truth feature rows."""
    rng = seeds.child("bench.classify.query")
    rows = rng.integers(0, X.shape[0], size=N_ROWS)
    return np.ascontiguousarray(X[rows])


def _time_best_of(clock, fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = clock()
        result = fn()
        best = min(best, clock() - start)
    return best, result


def test_flat_batch_beats_per_row_reference():
    seeds = SeedBank(BENCH_SEED)
    dataset = build_ground_truth(
        n_per_class=160, seed=seeds.child_seed("bench.classify.groundtruth")
    )
    X_train = np.vstack([page.fwb_vector for page in dataset.pages])
    y_train = np.asarray(dataset.labels)
    Q = _query_matrix(X_train, seeds)
    clock = wall_clock()  # reprolint: disable=RP105 — the bench measures real latency; predictions stay seed-pure

    model_sections = {}
    lines = []
    for name, factory in MODELS:
        model = factory(seeds.child_seed(f"bench.classify.{name}"))
        model.fit(X_train, y_train)
        model.predict_proba(Q[:8])  # warm up: compile the flat forests
        model.predict_proba_reference(Q[:8])

        flat_s, flat_proba = _time_best_of(
            clock, lambda m=model: m.predict_proba(Q)
        )
        # The pre-batching hot path: one model call per URL. Timed once —
        # it is the slow side, and one pass is already thousands of calls.
        start = clock()
        rowwise = np.vstack(
            [model.predict_proba_reference(row[None, :]) for row in Q]
        )
        rowwise_s = clock() - start

        identical = np.array_equal(flat_proba, rowwise)
        assert identical, f"{name}: flat batch diverges from per-row reference"
        speedup = rowwise_s / flat_s if flat_s > 0 else float("inf")
        assert speedup >= MIN_SPEEDUP, (
            f"{name}: flat batch only {speedup:.1f}x over per-row reference "
            f"(bar: {MIN_SPEEDUP:.0f}x)"
        )

        model_sections[name] = {
            "n_rows": N_ROWS,
            "flat_batch_seconds": flat_s,
            "flat_rows_per_s": N_ROWS / flat_s,
            "per_row_reference_seconds": rowwise_s,
            "per_row_rows_per_s": N_ROWS / rowwise_s,
            "speedup": speedup,
            "bitwise_identical": identical,
        }
        lines.append(
            f"{name}: {N_ROWS / flat_s:,.0f} rows/s flat vs "
            f"{N_ROWS / rowwise_s:,.0f} rows/s per-row "
            f"({speedup:.1f}x, bitwise identical)"
        )

    payload = {
        "schema": BENCH_SCHEMA,
        "config": {
            "seed": BENCH_SEED,
            "n_rows": N_ROWS,
            "n_train": int(X_train.shape[0]),
            "min_speedup": MIN_SPEEDUP,
        },
        "models": model_sections,
    }
    out = REPO_ROOT / "BENCH_classify.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")

    emit(
        "Throughput — flat batched classification",
        "\n".join(lines + [f"wrote {out.name}"]),
    )
