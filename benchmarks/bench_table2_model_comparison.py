"""Table 2: phishing-detection model comparison.

Paper: accuracy URLNet 0.68 < VisualPhishNet 0.76 < base StackModel 0.88 <
PhishIntention 0.96 ≈ Our Model 0.97; median runtime URLNet < StackModel <
Our Model < VisualPhishNet < PhishIntention. Absolute runtimes differ (the
substrate replaces deep-vision inference), but both orderings must hold.
"""

import numpy as np
from conftest import emit

from repro.analysis import build_table2
from repro.analysis.report import render_table2


def _rows(bench_ground_truth):
    ds = bench_ground_truth
    return build_table2(ds.pages, ds.labels, ds.web, n_estimators=30, seed=7)


def test_table2_model_comparison(benchmark, bench_ground_truth):
    rows = benchmark.pedantic(_rows, args=(bench_ground_truth,), rounds=1, iterations=1)
    emit("Table 2 — model comparison on the FWB ground truth", render_table2(rows))

    accuracy = {row.model: row.accuracy for row in rows}
    runtime = {row.model: row.median_runtime_seconds for row in rows}

    # Accuracy ordering (paper's Table 2).
    assert accuracy["URLNet"] < accuracy["VisualPhishNet"]
    assert accuracy["VisualPhishNet"] < accuracy["Base StackModel"]
    assert accuracy["Base StackModel"] < accuracy["Our Model"]
    assert accuracy["PhishIntention"] > 0.9
    assert accuracy["Our Model"] > 0.93

    # Feature augmentation delivers a real gain over the base model.
    # (with a 192-sample test split, one sample is ~0.5 accuracy points;
    # the architecture-controlled version of this claim is asserted more
    # tightly in bench_ablation_features.py)
    assert accuracy["Our Model"] - accuracy["Base StackModel"] >= 0.01

    # Runtime cost profile (paper: URLNet fastest, PhishIntention slowest).
    assert runtime["URLNet"] < runtime["Base StackModel"]
    assert runtime["Base StackModel"] <= runtime["Our Model"] * 1.5
    assert runtime["Our Model"] < runtime["VisualPhishNet"]
    assert runtime["VisualPhishNet"] < runtime["PhishIntention"]
