"""Shared benchmark fixtures.

The benchmark campaign is larger than the unit-test campaign (a scaled-down
replica of the paper's six-month run) and is built once per session; every
table/figure bench reads from it. Rendered tables are printed so a
``pytest benchmarks/ --benchmark-only -s`` run reads like the paper's
evaluation section.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

import pytest

from repro.config import SimulationConfig
from repro.obs import Instrumentation
from repro.sim import CampaignWorld, build_ground_truth

#: Scale factor note: the paper observed 31,405 FWB URLs over ~180 days.
#: The bench campaign keeps the same arrival shape at 1/40 scale.
BENCH_SEED = 20231024
BENCH_DAYS = 8
BENCH_TARGET = 1400

#: Worlds whose wall-clock stage profile should land in BENCH_pipeline.json.
_profiled_worlds: List[CampaignWorld] = []


@pytest.fixture(scope="session")
def bench_campaign():
    config = SimulationConfig(
        seed=BENCH_SEED, duration_days=BENCH_DAYS, target_fwb_phishing=BENCH_TARGET
    )
    # Wall-clock profiling mode: span histograms hold real per-stage
    # durations (seconds) instead of simulated minutes.
    world = CampaignWorld(
        config,
        train_samples_per_class=200,
        instrumentation=Instrumentation.profiling(),
    )
    result = world.run()
    _profiled_worlds.append(world)
    return world, result


#: Stages summarised in BENCH_pipeline.json. "step" is the full pipeline
#: tick (poll + preprocess + classify + report).
_PIPELINE_STAGES = ("poll", "preprocess", "classify", "report", "step")


def _stage_profile(world: CampaignWorld) -> dict:
    registry = world.instr.metrics
    urls = registry.counter("framework.observations").value
    stages = {}
    for stage in _PIPELINE_STAGES:
        snap = registry.histogram(f"span.framework.{stage}").snapshot()
        total_s = snap["sum"]
        stages[stage] = {
            "calls": snap["count"],
            "p50_ms": None if snap["p50"] is None else snap["p50"] * 1e3,
            "p90_ms": None if snap["p90"] is None else snap["p90"] * 1e3,
            "total_s": total_s,
            "urls_per_s": urls / total_s if total_s else None,
        }
    return stages


def pytest_sessionfinish(session, exitstatus):
    """Dump the bench campaign's per-stage wall-clock profile."""
    if not _profiled_worlds:
        return
    world = _profiled_worlds[-1]
    payload = {
        "schema": "repro.obs/bench_pipeline.v1",
        "campaign": {
            "seed": world.config.seed,
            "duration_days": world.config.duration_minutes // (24 * 60),
            "target_fwb_phishing": world.config.target_fwb_phishing,
            "observations": world.framework.stats.observations,
        },
        "stages": _stage_profile(world),
    }
    out = Path(session.config.rootpath) / "BENCH_pipeline.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")


@pytest.fixture(scope="session")
def bench_ground_truth():
    return build_ground_truth(n_per_class=320, seed=7)


def emit(title: str, body: str) -> None:
    """Print a result block (visible with ``-s`` / in captured output)."""
    bar = "=" * len(title)
    print(f"\n{title}\n{bar}\n{body}\n")
