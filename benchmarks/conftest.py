"""Shared benchmark fixtures.

The benchmark campaign is larger than the unit-test campaign (a scaled-down
replica of the paper's six-month run) and is built once per session; every
table/figure bench reads from it. Rendered tables are printed so a
``pytest benchmarks/ --benchmark-only -s`` run reads like the paper's
evaluation section.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.sim import CampaignWorld, build_ground_truth

#: Scale factor note: the paper observed 31,405 FWB URLs over ~180 days.
#: The bench campaign keeps the same arrival shape at 1/40 scale.
BENCH_SEED = 20231024
BENCH_DAYS = 8
BENCH_TARGET = 1400


@pytest.fixture(scope="session")
def bench_campaign():
    config = SimulationConfig(
        seed=BENCH_SEED, duration_days=BENCH_DAYS, target_fwb_phishing=BENCH_TARGET
    )
    world = CampaignWorld(config, train_samples_per_class=200)
    result = world.run()
    return world, result


@pytest.fixture(scope="session")
def bench_ground_truth():
    return build_ground_truth(n_per_class=320, seed=7)


def emit(title: str, body: str) -> None:
    """Print a result block (visible with ``-s`` / in captured output)."""
    bar = "=" * len(title)
    print(f"\n{title}\n{bar}\n{body}\n")
