"""§5.5: automatic identification of evasive attack vectors.

Paper: 14.2% of the dataset had no credential fields; among these the
heuristics identify two-step link-outs (Google Sites ~24%, Sharepoint ~16%,
Google Forms ~21%, Blogspot ~14% of their URLs), external i-frames
(Google Sites / Blogspot dominant), and malicious drive-by downloads
(Sharepoint 54%, Google Sites 29%, Blogspot 23%).
"""

from collections import Counter

from conftest import emit

from repro.core.evasive import classify_evasive, has_credential_fields
from repro.errors import FetchError
from repro.simnet import Browser
from repro.simnet.url import parse_url


def _sweep(world, result):
    browser = Browser(world.web)
    per_fwb = Counter()
    vectors = Counter()
    no_credentials = 0
    total = 0
    for timeline in result.fwb_timelines:
        url = parse_url(timeline.url)
        try:
            snapshot = browser.snapshot(url, timeline.first_seen)
        except FetchError:
            continue
        total += 1
        if has_credential_fields(snapshot):
            continue
        no_credentials += 1
        vector = classify_evasive(snapshot, browser, timeline.first_seen)
        if vector is not None:
            vectors[vector.value] += 1
            per_fwb[(timeline.fwb_name, vector.value)] += 1
    return total, no_credentials, vectors, per_fwb


def test_sec55_evasive_vectors(benchmark, bench_campaign):
    world, result = bench_campaign
    total, no_creds, vectors, per_fwb = benchmark.pedantic(
        _sweep, args=(world, result), rounds=1, iterations=1
    )
    share = no_creds / max(total, 1)
    lines = [
        f"analysed URLs                 {total}",
        f"without credential fields     {no_creds} ({share * 100:.1f}%; paper 14.2%)",
        f"two-step link-outs            {vectors.get('two_step', 0)}",
        f"external i-frames             {vectors.get('iframe', 0)}",
        f"malicious drive-by downloads  {vectors.get('driveby', 0)}",
        "",
        "per-FWB vector counts:",
    ]
    for (fwb, vector), count in sorted(per_fwb.items(), key=lambda kv: -kv[1])[:12]:
        lines.append(f"  {fwb:14s} {vector:9s} {count}")
    emit("Section 5.5 — evasive attack vectors", "\n".join(lines))

    # A meaningful credential-free share exists (paper: 14.2%).
    assert 0.05 < share < 0.35
    # All three vectors observed.
    assert set(vectors) == {"two_step", "iframe", "driveby"}
    # The evasive mass concentrates on the §5.5 services.
    evasive_hosts = Counter()
    for (fwb, _vector), count in per_fwb.items():
        evasive_hosts[fwb] += count
    top_hosts = {fwb for fwb, _n in evasive_hosts.most_common(4)}
    assert top_hosts & {"google_sites", "sharepoint", "blogspot", "google_forms"}
    # The heuristics cover nearly every credential-free page.
    assert sum(vectors.values()) >= 0.8 * no_creds
