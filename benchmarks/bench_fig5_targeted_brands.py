"""Figure 5: targeted organizations.

Paper: 31.4K attacks spoofing 109 unique brands, with a heavily skewed
head (social/productivity/payment giants) and a long institutional tail.
"""

from conftest import emit

from repro.analysis import build_fig5
from repro.analysis.report import render_figure
from repro.simnet.url import parse_url


def _brand_slugs(world, result):
    slugs = []
    for timeline in result.fwb_timelines:
        site = world.web.site_for(parse_url(timeline.url))
        if site is not None:
            slugs.append(site.metadata.get("brand"))
    return slugs


def test_fig5_targeted_brands(benchmark, bench_campaign):
    world, result = bench_campaign
    slugs = _brand_slugs(world, result)
    figure = benchmark(build_fig5, slugs, 15)
    emit("Figure 5 — most-targeted organizations", render_figure(figure, 0))

    counts = figure.series["attacks"]
    # Skewed head: the top brand collects several times the 15th.
    assert counts[0] >= 3 * max(counts[-1], 1)
    # Diverse tail: a substantial brand population is hit even at bench scale.
    assert figure.series["unique_brands_total"][0] >= 40
    # Counts are sorted descending.
    assert counts == sorted(counts, reverse=True)
