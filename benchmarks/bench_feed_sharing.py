"""Policy experiment: would better blocklist feed-sharing close the gap?

§4.4 documents the sharing pipes (PhishTank/OpenPhish feed downstream
tools; eCrimeX feeds defenders). This experiment wires those pipes up and
measures coverage with and without them. Sharing lifts every subscriber on
both populations — but it cannot close the FWB gap: even with full
sharing, FWB coverage stays far below what self-hosted attacks get
*without* any sharing, because the community lists discover few FWB
attacks to contribute. The gap is a discovery problem, not a distribution
problem.
"""

import numpy as np
from conftest import emit

from repro.ecosystem import IntelService, default_blocklists, sharing_experiment
from repro.simnet import Browser, Web
from repro.sitegen import PhishingKitGenerator, PhishingSiteGenerator

WEEK = 7 * 24 * 60


def _build(n=120, seed=31):
    rng = np.random.default_rng(seed)
    web = Web()
    blocklists = default_blocklists(IntelService(web, Browser(web)), seed=seed)
    kit_gen = PhishingKitGenerator()
    phish_gen = PhishingSiteGenerator()
    providers = list(web.fwb_providers.values())
    weights = np.asarray([p.service.attacker_weight for p in providers], float)
    probs = weights / weights.sum()
    self_urls, fwb_urls = [], []
    for _ in range(n):
        self_urls.append(kit_gen.create_site(web.self_hosting, 0, rng).root_url)
        provider = providers[int(rng.choice(len(providers), p=probs))]
        fwb_urls.append(phish_gen.create_site(provider, 0, rng).root_url)
    for blocklist in blocklists.values():
        for url in self_urls + fwb_urls:
            blocklist.observe(url, 0)
    return blocklists, self_urls, fwb_urls


def test_feed_sharing_experiment(benchmark):
    blocklists, self_urls, fwb_urls = benchmark.pedantic(
        _build, rounds=1, iterations=1
    )
    on_self = sharing_experiment(blocklists, self_urls, WEEK)
    on_fwb = sharing_experiment(blocklists, fwb_urls, WEEK)

    lines = ["blocklist   population    native -> with sharing"]
    for name in ("gsb", "ecrimex"):
        lines.append(
            f"{name:10s}  self-hosted   {on_self[name]['native'] * 100:5.1f}% -> "
            f"{on_self[name]['with_sharing'] * 100:5.1f}%"
        )
        lines.append(
            f"{name:10s}  FWB           {on_fwb[name]['native'] * 100:5.1f}% -> "
            f"{on_fwb[name]['with_sharing'] * 100:5.1f}%"
        )
    emit("Policy experiment — blocklist feed sharing", "\n".join(lines))

    # Sharing helps subscribers on self-hosted attacks...
    self_uplift = (
        on_self["ecrimex"]["with_sharing"] - on_self["ecrimex"]["native"]
    )
    assert self_uplift >= 0.0
    # ...and helps on FWB attacks too, but modestly (little to share) —
    fwb_uplift = on_fwb["gsb"]["with_sharing"] - on_fwb["gsb"]["native"]
    assert fwb_uplift < 0.15
    # — and the FWB gap survives full sharing: shared FWB coverage stays
    # far below even *unshared* self-hosted coverage.
    assert on_fwb["gsb"]["with_sharing"] < on_self["gsb"]["native"] - 0.2
