"""Figure 8: engine-detection progression over seven days.

Paper: ~75-82% of FWB URLs sit at ≤2 detections on day one and ~41-43%
remain at ≤4 after a week; self-hosted URLs start near 32-34% at ≤2 and end
with only 8-11% at ≤4 — i.e., FWB URLs accrue detections far more slowly.
"""

from conftest import emit

from repro.analysis import build_fig8
from repro.analysis.report import render_figure


def test_fig8_daily_detections(benchmark, bench_campaign):
    _world, result = bench_campaign
    figure = benchmark(build_fig8, result.timelines)
    emit("Figure 8 — share of URLs at/below k detections per day", render_figure(figure))

    days = figure.x_values

    def at(series, day):
        return figure.series[series][days.index(day)]

    # Day 1: most FWB URLs still nearly undetected; self-hosted far fewer.
    assert at("fwb_le_2", 1) > at("self_hosted_le_2", 1) + 0.3

    # Day 7: a large share of FWB URLs remain at <=4 detections, while
    # almost all self-hosted URLs have passed that bar.
    assert at("fwb_le_4", 7) > 0.3
    assert at("self_hosted_le_4", 7) < 0.25
    assert at("fwb_le_4", 7) > at("self_hosted_le_4", 7) + 0.25

    # Shares at a fixed threshold only fall over time.
    for key in ("fwb_le_2", "self_hosted_le_2", "fwb_le_4", "self_hosted_le_4"):
        series = figure.series[key]
        assert all(a >= b - 1e-9 for a, b in zip(series, series[1:])), key
